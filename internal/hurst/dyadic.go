package hurst

import (
	"errors"
	"math"

	"cstrace/internal/stats"
)

// Dyadic is a streaming variance-time estimator over the dyadic aggregation
// ladder m = 1, 2, 4, ..., 2^(levels-1). Unlike Ladder (which costs
// O(levels) per sample), Dyadic pair-sums upward so the amortized cost per
// base value is O(1): the full-week 10 ms-binned process (63 M bins, 27
// levels) streams through in a fraction of a second.
type Dyadic struct {
	carry []float64 // pending half-block sums per level
	have  []bool
	wf    []stats.Welford
}

// NewDyadic creates a dyadic ladder with the given number of levels
// (level k aggregates m = 2^k base intervals).
func NewDyadic(levels int) (*Dyadic, error) {
	if levels <= 0 || levels > 62 {
		return nil, errors.New("hurst: NewDyadic: levels must be in [1, 62]")
	}
	return &Dyadic{
		carry: make([]float64, levels),
		have:  make([]bool, levels),
		wf:    make([]stats.Welford, levels),
	}, nil
}

// Add feeds the next base-interval value.
func (d *Dyadic) Add(x float64) {
	d.wf[0].Add(x)
	sum := x
	for k := 1; k < len(d.wf); k++ {
		if !d.have[k] {
			d.carry[k] = sum
			d.have[k] = true
			return
		}
		sum += d.carry[k]
		d.have[k] = false
		d.wf[k].Add(sum / float64(int64(1)<<k))
	}
}

// BaseCount returns the number of base values fed.
func (d *Dyadic) BaseCount() int64 { return d.wf[0].N() }

// Points returns variance-time points for every level with at least two
// complete blocks.
func (d *Dyadic) Points() []Point {
	v1 := d.wf[0].Variance()
	var out []Point
	for k := range d.wf {
		if d.wf[k].N() < 2 {
			continue
		}
		m := int(int64(1) << k)
		p := Point{
			M:          m,
			Log10M:     math.Log10(float64(m)),
			BlockCount: d.wf[k].N(),
		}
		if v1 > 0 {
			p.NormVar = d.wf[k].Variance() / v1
		}
		if p.NormVar > 0 {
			p.Log10Var = math.Log10(p.NormVar)
		} else {
			p.Log10Var = math.Inf(-1)
		}
		out = append(out, p)
	}
	return out
}
