package hurst

import (
	"math"
	"testing"
)

func TestDyadicMatchesBatch(t *testing.T) {
	base := white(1<<13, 11)
	d, err := NewDyadic(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range base {
		d.Add(x)
	}
	levels := make([]int, 10)
	for k := range levels {
		levels[k] = 1 << k
	}
	batch := VarianceTime(base, levels)
	stream := d.Points()
	if len(stream) != len(batch) {
		t.Fatalf("points: stream %d, batch %d", len(stream), len(batch))
	}
	for i := range stream {
		if stream[i].M != batch[i].M {
			t.Fatalf("level mismatch at %d: %d vs %d", i, stream[i].M, batch[i].M)
		}
		if math.Abs(stream[i].NormVar-batch[i].NormVar) > 1e-9*(1+batch[i].NormVar) {
			t.Errorf("m=%d: stream %v, batch %v", stream[i].M, stream[i].NormVar, batch[i].NormVar)
		}
	}
}

func TestDyadicWhiteNoiseSlope(t *testing.T) {
	d, _ := NewDyadic(14)
	r := whiteStream(42)
	for i := 0; i < 1<<17; i++ {
		d.Add(r())
	}
	est, err := EstimateFromPoints(d.Points(), 1, 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.H-0.5) > 0.05 {
		t.Errorf("H = %.3f, want ~0.5", est.H)
	}
}

func TestDyadicValidation(t *testing.T) {
	if _, err := NewDyadic(0); err == nil {
		t.Error("want error for 0 levels")
	}
	if _, err := NewDyadic(63); err == nil {
		t.Error("want error for too many levels")
	}
}

func TestDyadicBaseCount(t *testing.T) {
	d, _ := NewDyadic(4)
	for i := 0; i < 37; i++ {
		d.Add(1)
	}
	if d.BaseCount() != 37 {
		t.Errorf("BaseCount = %d", d.BaseCount())
	}
	// A constant stream has zero variance at every level; points must not
	// report positive normalized variance.
	for _, p := range d.Points() {
		if p.NormVar != 0 {
			t.Errorf("constant stream: m=%d NormVar=%v", p.M, p.NormVar)
		}
	}
}

func BenchmarkDyadicAdd(b *testing.B) {
	d, _ := NewDyadic(27)
	r := whiteStream(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(r())
	}
}
