// Package hurst implements the aggregated-variance estimate of the Hurst
// parameter used in the paper's Fig 5, together with a streaming variant
// that runs over half-billion-packet traces in constant memory, and an R/S
// cross-check.
//
// Method (the paper's §III-B): divide the base series into consecutive
// blocks of m values, average within blocks, and compute the variance of the
// resulting series X^(m). Plot log(var(X^(m))/var(X)) against log(m). For a
// short-range dependent process the slope β is −1 (H = 1/2); a long-range
// dependent process keeps variance across scales, β > −1, H = 1 − β/2 → 1.
package hurst

import (
	"errors"
	"math"
	"sort"

	"cstrace/internal/stats"
	"cstrace/internal/timeseries"
)

// Point is one variance-time sample: Log10M against Log10NormVar, plus the
// raw values they came from.
type Point struct {
	M          int     // aggregation level in base intervals
	Log10M     float64 // log10(m)
	NormVar    float64 // var(X^(m)) / var(X^(1))
	Log10Var   float64 // log10(NormVar)
	BlockCount int64   // number of aggregated blocks observed
}

// Estimate is a fitted Hurst parameter over a range of aggregation levels.
type Estimate struct {
	H     float64 // 1 - slope/2, clamped to [0, 1]
	Slope float64 // β, the variance-time slope (typically in [-2, 0])
	R2    float64
	N     int // points used
}

// EstimateFromPoints fits the variance-time slope through points whose m lies
// in [mLow, mHigh] and converts it to H = 1 − β/2.
func EstimateFromPoints(points []Point, mLow, mHigh int) (Estimate, error) {
	var xs, ys []float64
	for _, p := range points {
		if p.M < mLow || p.M > mHigh {
			continue
		}
		if p.NormVar <= 0 || math.IsNaN(p.Log10Var) || math.IsInf(p.Log10Var, 0) {
			continue
		}
		xs = append(xs, p.Log10M)
		ys = append(ys, p.Log10Var)
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return Estimate{}, err
	}
	h := 1 + fit.Slope/2 // slope is negative: H = 1 - |β|/2
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return Estimate{H: h, Slope: fit.Slope, R2: fit.R2, N: fit.N}, nil
}

// VarianceTime computes variance-time points for an in-memory base series at
// the given aggregation levels (in base intervals). Levels that leave fewer
// than two blocks are skipped.
func VarianceTime(base []float64, levels []int) []Point {
	v1 := stats.Variance(base)
	var out []Point
	for _, m := range levels {
		if m <= 0 {
			continue
		}
		agg := timeseries.Aggregate(base, m)
		if len(agg) < 2 {
			continue
		}
		v := stats.Variance(agg)
		p := Point{M: m, Log10M: math.Log10(float64(m)), BlockCount: int64(len(agg))}
		if v1 > 0 {
			p.NormVar = v / v1
		}
		if p.NormVar > 0 {
			p.Log10Var = math.Log10(p.NormVar)
		} else {
			p.Log10Var = math.Inf(-1)
		}
		out = append(out, p)
	}
	return out
}

// DefaultLevels returns a log-spaced ladder of aggregation levels from 1 up
// to max (inclusive where representable), roughly 10 per decade. This matches
// the density of points in the paper's Fig 5.
func DefaultLevels(max int) []int {
	if max < 1 {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for e := 0.0; ; e += 0.1 {
		m := int(math.Round(math.Pow(10, e)))
		if m > max {
			break
		}
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

// Ladder computes variance-time points in a single streaming pass with
// O(levels) memory: each level keeps one open block accumulator and a Welford
// over completed block means. Feed base-interval values in order with Add.
type Ladder struct {
	levels []int
	accSum []float64
	accN   []int
	wf     []stats.Welford
}

// NewLadder creates a streaming estimator for the given aggregation levels.
// Level 1 is added implicitly if missing (the normalization baseline).
func NewLadder(levels []int) (*Ladder, error) {
	if len(levels) == 0 {
		return nil, errors.New("hurst: NewLadder: no levels")
	}
	has1 := false
	seen := map[int]bool{}
	var ls []int
	for _, m := range levels {
		if m <= 0 {
			return nil, errors.New("hurst: NewLadder: levels must be positive")
		}
		if m == 1 {
			has1 = true
		}
		if !seen[m] {
			seen[m] = true
			ls = append(ls, m)
		}
	}
	if !has1 {
		ls = append(ls, 1)
	}
	sort.Ints(ls)
	return &Ladder{
		levels: ls,
		accSum: make([]float64, len(ls)),
		accN:   make([]int, len(ls)),
		wf:     make([]stats.Welford, len(ls)),
	}, nil
}

// Add feeds the next base-interval value.
func (l *Ladder) Add(x float64) {
	for i, m := range l.levels {
		l.accSum[i] += x
		l.accN[i]++
		if l.accN[i] == m {
			l.wf[i].Add(l.accSum[i] / float64(m))
			l.accSum[i] = 0
			l.accN[i] = 0
		}
	}
}

// Points returns the variance-time points observed so far. Open partial
// blocks are excluded (standard practice).
func (l *Ladder) Points() []Point {
	var v1 float64
	for i, m := range l.levels {
		if m == 1 {
			v1 = l.wf[i].Variance()
		}
	}
	var out []Point
	for i, m := range l.levels {
		if l.wf[i].N() < 2 {
			continue
		}
		p := Point{
			M:          m,
			Log10M:     math.Log10(float64(m)),
			BlockCount: l.wf[i].N(),
		}
		if v1 > 0 {
			p.NormVar = l.wf[i].Variance() / v1
		}
		if p.NormVar > 0 {
			p.Log10Var = math.Log10(p.NormVar)
		} else {
			p.Log10Var = math.Inf(-1)
		}
		out = append(out, p)
	}
	return out
}

// BaseCount returns how many base values have been fed.
func (l *Ladder) BaseCount() int64 {
	for i, m := range l.levels {
		if m == 1 {
			return l.wf[i].N()
		}
	}
	return 0
}

// RS computes the rescaled-range statistic R/S for one block of values.
func RS(block []float64) float64 {
	n := len(block)
	if n < 2 {
		return 0
	}
	mean := stats.Mean(block)
	var cum, min, max float64
	for _, x := range block {
		cum += x - mean
		if cum < min {
			min = cum
		}
		if cum > max {
			max = cum
		}
	}
	r := max - min
	s := stats.StdDev(block)
	if s == 0 {
		return 0
	}
	return r / s
}

// EstimateRS estimates H by regressing log(R/S) on log(n) over log-spaced
// block sizes; a classical cross-check on the aggregated-variance method.
func EstimateRS(base []float64) (Estimate, error) {
	if len(base) < 16 {
		return Estimate{}, errors.New("hurst: EstimateRS: series too short")
	}
	var xs, ys []float64
	for _, n := range DefaultLevels(len(base) / 4) {
		if n < 8 {
			continue
		}
		// Average R/S over all full blocks of size n.
		var sum float64
		var k int
		for off := 0; off+n <= len(base); off += n {
			v := RS(base[off : off+n])
			if v > 0 {
				sum += v
				k++
			}
		}
		if k == 0 {
			continue
		}
		xs = append(xs, math.Log10(float64(n)))
		ys = append(ys, math.Log10(sum/float64(k)))
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return Estimate{}, err
	}
	h := fit.Slope
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return Estimate{H: h, Slope: fit.Slope, R2: fit.R2, N: fit.N}, nil
}
