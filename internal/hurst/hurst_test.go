package hurst

import (
	"math"
	"testing"

	"cstrace/internal/dist"
)

// white returns i.i.d. noise: the canonical H = 1/2 process.
func white(n int, seed uint64) []float64 {
	r := dist.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64()
	}
	return out
}

// whiteStream returns a generator of i.i.d. normal values.
func whiteStream(seed uint64) func() float64 {
	r := dist.NewRNG(seed)
	return r.NormFloat64
}

// periodic returns a deterministic period-p burst process: one busy interval
// per period. Aggregating past the period removes all variance much faster
// than i.i.d. noise does, which is the signature (H < 1/2, negative
// correlation) the paper sees below 50 ms.
func periodic(n, p int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i%p == 0 {
			out[i] = float64(p)
		}
	}
	return out
}

// fgnLike builds a long-range dependent surrogate by summing slowly-varying
// random levels across geometric scales (a crude multi-scale cascade). Its
// exact H is not known analytically, but its aggregated variance decays much
// slower than 1/m, so the estimate must exceed 1/2 by a clear margin.
func fgnLike(n int, seed uint64) []float64 {
	r := dist.NewRNG(seed)
	out := make([]float64, n)
	for scale := 1; scale < n; scale *= 4 {
		level := 0.0
		for i := 0; i < n; i++ {
			if i%scale == 0 {
				level = r.NormFloat64()
			}
			out[i] += level
		}
	}
	return out
}

func estimate(t *testing.T, base []float64, mLow, mHigh int) Estimate {
	t.Helper()
	pts := VarianceTime(base, DefaultLevels(len(base)/4))
	est, err := EstimateFromPoints(pts, mLow, mHigh)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestWhiteNoiseHurstIsHalf(t *testing.T) {
	est := estimate(t, white(1<<16, 1), 1, 1<<12)
	if math.Abs(est.H-0.5) > 0.05 {
		t.Errorf("H(white) = %.3f, want ~0.5 (slope %.3f)", est.H, est.Slope)
	}
	if est.R2 < 0.98 {
		t.Errorf("R2 = %.3f, expected a clean -1 slope", est.R2)
	}
}

func TestPeriodicProcessBelowHalf(t *testing.T) {
	// The paper's Fig 5 shows "H drops below 1/2" for m below the 50ms tick
	// period. Periodic bursts smooth faster than independent noise.
	base := periodic(1<<15, 5)
	pts := VarianceTime(base, []int{1, 2, 3, 4, 5})
	est, err := EstimateFromPoints(pts, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if est.H >= 0.45 {
		t.Errorf("H(periodic, sub-period) = %.3f, want < 0.45 (slope %.3f)", est.H, est.Slope)
	}
	// Beyond the period the process is constant: variance vanishes.
	ptsBig := VarianceTime(base, []int{5, 10, 25})
	for _, p := range ptsBig {
		if p.M%5 == 0 && p.NormVar > 1e-20 {
			t.Errorf("variance at multiple-of-period m=%d should be ~0, got %v", p.M, p.NormVar)
		}
	}
}

func TestLRDProcessAboveHalf(t *testing.T) {
	est := estimate(t, fgnLike(1<<15, 2), 4, 1<<10)
	if est.H < 0.7 {
		t.Errorf("H(LRD surrogate) = %.3f, want > 0.7 (slope %.3f)", est.H, est.Slope)
	}
}

func TestLadderMatchesBatch(t *testing.T) {
	base := white(10000, 3)
	levels := []int{1, 2, 5, 10, 50, 100}
	lad, err := NewLadder(levels)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range base {
		lad.Add(x)
	}
	streamPts := lad.Points()
	batchPts := VarianceTime(base, levels)
	if len(streamPts) != len(batchPts) {
		t.Fatalf("point counts differ: %d vs %d", len(streamPts), len(batchPts))
	}
	for i := range streamPts {
		s, b := streamPts[i], batchPts[i]
		if s.M != b.M {
			t.Fatalf("level order mismatch: %d vs %d", s.M, b.M)
		}
		if math.Abs(s.NormVar-b.NormVar) > 1e-9*(1+b.NormVar) {
			t.Errorf("m=%d: stream %v vs batch %v", s.M, s.NormVar, b.NormVar)
		}
	}
	if lad.BaseCount() != 10000 {
		t.Errorf("BaseCount = %d", lad.BaseCount())
	}
}

func TestLadderValidation(t *testing.T) {
	if _, err := NewLadder(nil); err == nil {
		t.Error("want error for no levels")
	}
	if _, err := NewLadder([]int{0}); err == nil {
		t.Error("want error for non-positive level")
	}
	// Level 1 is implicit.
	lad, err := NewLadder([]int{10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		lad.Add(float64(i % 7))
	}
	pts := lad.Points()
	if len(pts) == 0 || pts[0].M != 1 {
		t.Errorf("implicit level-1 missing: %+v", pts)
	}
}

func TestEstimateFromPointsErrors(t *testing.T) {
	if _, err := EstimateFromPoints(nil, 1, 10); err == nil {
		t.Error("want error for no points")
	}
}

func TestDefaultLevels(t *testing.T) {
	ls := DefaultLevels(1000)
	if ls[0] != 1 {
		t.Error("levels must start at 1")
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Fatal("levels must be strictly increasing")
		}
		if ls[i] > 1000 {
			t.Fatal("levels must not exceed max")
		}
	}
	if DefaultLevels(0) != nil {
		t.Error("max<1 should return nil")
	}
}

func TestRS(t *testing.T) {
	if RS([]float64{1}) != 0 {
		t.Error("short block")
	}
	if RS([]float64{2, 2, 2, 2}) != 0 {
		t.Error("constant block has zero S; should return 0")
	}
	v := RS([]float64{1, 2, 3, 4, 5, 4, 3, 2})
	if v <= 0 {
		t.Errorf("R/S = %v, want positive", v)
	}
}

func TestEstimateRSOnWhiteNoise(t *testing.T) {
	est, err := EstimateRS(white(1<<14, 4))
	if err != nil {
		t.Fatal(err)
	}
	// R/S on iid noise converges to H=0.5 slowly and with known small-sample
	// upward bias; accept a generous band.
	if est.H < 0.4 || est.H > 0.68 {
		t.Errorf("H_RS(white) = %.3f, want in [0.40, 0.68]", est.H)
	}
}

func TestEstimateRSTooShort(t *testing.T) {
	if _, err := EstimateRS(make([]float64, 4)); err == nil {
		t.Error("want error for short series")
	}
}
