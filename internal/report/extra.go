package report

import (
	"fmt"
	"io"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/stats"
	"cstrace/internal/trace"
)

// sizeCDFProbes are the cumulative probabilities tabulated by SizeCDF.
var sizeCDFProbes = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}

// SizeCDF renders Fig 13 as a quantile table: the payload size below which
// each fraction of packets falls, per direction and total.
func SizeCDF(w io.Writer, title string, d *analysis.SizeDist) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%8s %10s %10s %10s\n", "P", "inbound", "outbound", "total")
	total := d.Total() // derived from In+Out; build it once for the table
	for _, p := range sizeCDFProbes {
		fmt.Fprintf(w, "%7.0f%% %9dB %9dB %9dB\n", p*100,
			quantileOf(d.In, p), quantileOf(d.Out, p), quantileOf(total, p))
	}
	fmt.Fprintln(w)
}

// quantileOf returns the smallest size v with CDF(v) ≥ p.
func quantileOf(h *stats.IntHistogram, p float64) int {
	cdf := h.CDF()
	for v, c := range cdf {
		if c >= p {
			return v
		}
	}
	return len(cdf) - 1
}

// Composition renders the traffic breakdown by application message class
// (§II's inventory of traffic sources).
func Composition(w io.Writer, k *analysis.KindBreakdown) {
	rows := k.Rows()
	fmt.Fprintln(w, "Traffic composition by message class")
	fmt.Fprintf(w, "%-10s %14s %16s %16s %8s\n", "class", "packets", "app bytes", "wire bytes", "share")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14d %16d %16d %7.2f%%\n",
			r.Kind, r.Packets, r.AppBytes, r.WireBytes, 100*k.Share(r.Kind))
	}
	fmt.Fprintln(w)
}

// Burstiness renders the interarrival summary and the recovered tick — the
// quantitative form of the paper's Figs 6-7 narrative.
func Burstiness(w io.Writer, ia *analysis.Interarrival, tick time.Duration, corr float64) {
	fmt.Fprintln(w, "Interarrival structure")
	for _, d := range []trace.Direction{trace.In, trace.Out} {
		fmt.Fprintf(w, "  %-4s mean %8.3f ms   CV %6.2f   p50 %8v   p90 %8v\n",
			d, 1e3*ia.Mean(d), ia.CV(d), ia.Quantile(d, 0.5), ia.Quantile(d, 0.9))
	}
	if tick > 0 {
		fmt.Fprintf(w, "  recovered server tick: %v (autocorrelation %.2f)\n", tick, corr)
	}
	fmt.Fprintln(w)
}
