package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/hurst"
	"cstrace/internal/nat"
	"cstrace/internal/trace"
)

func TestTableRendering(t *testing.T) {
	var b strings.Builder
	TableI(&b, analysis.TableI{
		TotalTime: 626477 * time.Second, MapsPlayed: 339,
		Established: 16030, UniqueEstablishing: 5886,
		Attempted: 24004, UniqueAttempting: 8207,
		MeanSessionSec: 705, MeanPlayers: 18.05,
	})
	out := b.String()
	for _, want := range []string{"Table I", "7 d, 6 h, 1 m", "16030", "8207", "339"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableI output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIandIII(t *testing.T) {
	var b strings.Builder
	var c analysis.Counters
	TableII(&b, c.TableII(time.Second))
	TableIII(&b, c.TableIII())
	out := b.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "Table III") {
		t.Error(out)
	}
}

func TestTableIV(t *testing.T) {
	var b strings.Builder
	TableIV(&b, nat.Counts{
		ServerToNAT: 677278, NATToClients: 674157,
		ClientToNAT: 853035, NATToServer: 841960,
	})
	out := b.String()
	if !strings.Contains(out, "0.461%") {
		t.Errorf("expected outgoing loss 0.461%% in:\n%s", out)
	}
	if !strings.Contains(out, "1.298%") {
		t.Errorf("expected incoming loss 1.298%% in:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	ys := make([]float64, 1000)
	for i := range ys {
		ys[i] = float64(i % 100)
	}
	Series(&b, "load", ys, 40, 5)
	out := b.String()
	if !strings.Contains(out, "#") {
		t.Error("chart has no bars")
	}
	if !strings.Contains(out, "n=1000") {
		t.Error("missing sample count")
	}
	lines := strings.Split(out, "\n")
	var plotted int
	for _, l := range lines {
		if strings.HasPrefix(l, "  |") {
			plotted++
			if len(l) > 3+40 {
				t.Errorf("row too wide: %q", l)
			}
		}
	}
	if plotted != 5 {
		t.Errorf("plotted %d rows, want 5", plotted)
	}

	b.Reset()
	Series(&b, "empty", nil, 10, 3)
	if !strings.Contains(b.String(), "(no data)") {
		t.Error("empty series should say so")
	}

	b.Reset()
	Series(&b, "zeros", []float64{0, 0, 0}, 10, 3)
	if strings.Contains(b.String(), "#") {
		t.Error("all-zero series should draw nothing")
	}
}

func TestVarianceTime(t *testing.T) {
	var b strings.Builder
	pts := []hurst.Point{
		{M: 1, Log10M: 0, NormVar: 1, Log10Var: 0, BlockCount: 100},
		{M: 10, Log10M: 1, NormVar: 0.1, Log10Var: -1, BlockCount: 10},
	}
	re := analysis.RegionEstimates{}
	VarianceTime(&b, pts, re)
	out := b.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "H (m < 50ms)") {
		t.Error(out)
	}
}

func TestSizePDF(t *testing.T) {
	var b strings.Builder
	SizePDF(&b, "Fig 12", []float64{0.5, 0.25, 0.25}, 10, 2)
	out := b.String()
	if !strings.Contains(out, "0-9") || strings.Contains(out, "20-29") {
		t.Errorf("bin rendering wrong:\n%s", out)
	}
}

func TestResample(t *testing.T) {
	ys := []float64{1, 1, 3, 3}
	got := resample(ys, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("resample = %v", got)
	}
	short := resample([]float64{5}, 10)
	if len(short) != 1 || short[0] != 5 {
		t.Errorf("short resample = %v", short)
	}
}

func TestSizeCDF(t *testing.T) {
	d := analysis.NewSizeDist(600)
	for i := 0; i < 90; i++ {
		d.Handle(trace.Record{Dir: trace.In, App: 40})
		d.Handle(trace.Record{Dir: trace.Out, App: 130})
	}
	for i := 0; i < 10; i++ {
		d.Handle(trace.Record{Dir: trace.Out, App: 300})
	}
	var buf bytes.Buffer
	SizeCDF(&buf, "Figure 13", d)
	out := buf.String()
	if !strings.Contains(out, "Figure 13") {
		t.Error("missing title")
	}
	// Inbound p50 must be 40B; outbound p99 is 300B.
	if !strings.Contains(out, "40B") || !strings.Contains(out, "300B") {
		t.Errorf("quantiles missing from output:\n%s", out)
	}
}

func TestComposition(t *testing.T) {
	k := analysis.NewKindBreakdown()
	for i := 0; i < 9; i++ {
		k.Handle(trace.Record{Kind: trace.KindGame, App: 100})
	}
	k.Handle(trace.Record{Kind: trace.KindDownload, App: 900})
	var buf bytes.Buffer
	Composition(&buf, k)
	out := buf.String()
	if !strings.Contains(out, "game") || !strings.Contains(out, "download") {
		t.Errorf("composition output missing classes:\n%s", out)
	}
	if !strings.Contains(out, "90.00%") {
		t.Errorf("share missing:\n%s", out)
	}
}

func TestBurstiness(t *testing.T) {
	ia := analysis.NewInterarrival()
	for i := 0; i < 100; i++ {
		ia.Handle(trace.Record{T: time.Duration(i) * time.Millisecond, Dir: trace.In})
		ia.Handle(trace.Record{T: time.Duration(i) * time.Millisecond, Dir: trace.Out})
	}
	var buf bytes.Buffer
	Burstiness(&buf, ia, 50*time.Millisecond, 0.97)
	out := buf.String()
	if !strings.Contains(out, "recovered server tick: 50ms") {
		t.Errorf("tick line missing:\n%s", out)
	}
	if !strings.Contains(out, "in") || !strings.Contains(out, "out") {
		t.Errorf("direction rows missing:\n%s", out)
	}
}
