// Package report renders the reproduction's tables and figures as text:
// two-column tables in the style of the paper, plus compact ASCII charts
// for the time series, histograms and the variance-time plot.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cstrace/internal/analysis"
	"cstrace/internal/hurst"
	"cstrace/internal/nat"
	"cstrace/internal/units"
)

// KV is one table row.
type KV struct {
	Key   string
	Value string
}

// Table writes a titled two-column table.
func Table(w io.Writer, title string, rows []KV) {
	width := 0
	for _, r := range rows {
		if len(r.Key) > width {
			width = len(r.Key)
		}
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	for _, r := range rows {
		fmt.Fprintf(w, "  %-*s  %s\n", width, r.Key, r.Value)
	}
	fmt.Fprintln(w)
}

// TableI renders the general trace information table.
func TableI(w io.Writer, t analysis.TableI) {
	Table(w, "Table I: General trace information", []KV{
		{"Total Time of Trace", units.FormatDuration(t.TotalTime.Seconds())},
		{"Maps Played", fmt.Sprintf("%d", t.MapsPlayed)},
		{"Established Connections", fmt.Sprintf("%d", t.Established)},
		{"Unique Clients Establishing", fmt.Sprintf("%d", t.UniqueEstablishing)},
		{"Attempted Connections", fmt.Sprintf("%d", t.Attempted)},
		{"Unique Clients Attempting", fmt.Sprintf("%d", t.UniqueAttempting)},
		{"Mean Session Length", fmt.Sprintf("%.0f sec", t.MeanSessionSec)},
		{"Mean Active Players", fmt.Sprintf("%.2f", t.MeanPlayers)},
	})
}

// TableII renders the network usage table.
func TableII(w io.Writer, t analysis.TableII) {
	Table(w, "Table II: Network usage information", []KV{
		{"Total Packets", fmt.Sprintf("%d", t.TotalPackets)},
		{"Total Packets In", fmt.Sprintf("%d", t.PacketsIn)},
		{"Total Packets Out", fmt.Sprintf("%d", t.PacketsOut)},
		{"Total Bytes", t.TotalBytes.String()},
		{"Total Bytes In", t.BytesIn.String()},
		{"Total Bytes Out", t.BytesOut.String()},
		{"Mean Packet Load", t.MeanPPS.String()},
		{"Mean Packet Load In", t.MeanPPSIn.String()},
		{"Mean Packet Load Out", t.MeanPPSOut.String()},
		{"Mean Bandwidth", t.MeanBW.String()},
		{"Mean Bandwidth In", t.MeanBWIn.String()},
		{"Mean Bandwidth Out", t.MeanBWOut.String()},
	})
}

// TableIII renders the application-layer table.
func TableIII(w io.Writer, t analysis.TableIII) {
	Table(w, "Table III: Application information", []KV{
		{"Total Bytes", t.TotalBytes.String()},
		{"Total Bytes In", t.BytesIn.String()},
		{"Total Bytes Out", t.BytesOut.String()},
		{"Mean Packet Size", fmt.Sprintf("%.2f bytes", t.MeanSize)},
		{"Mean Packet Size In", fmt.Sprintf("%.2f bytes", t.MeanIn)},
		{"Mean Packet Size Out", fmt.Sprintf("%.2f bytes", t.MeanOut)},
	})
}

// TableIV renders the NAT experiment table.
func TableIV(w io.Writer, c nat.Counts) {
	Table(w, "Table IV: NAT experiment", []KV{
		{"Total Packets From Server to NAT", fmt.Sprintf("%d", c.ServerToNAT)},
		{"Total Packets From NAT to Clients", fmt.Sprintf("%d", c.NATToClients)},
		{"Loss Rate (outgoing)", fmt.Sprintf("%.3f%%", c.LossOut()*100)},
		{"Total Packets From Clients to NAT", fmt.Sprintf("%d", c.ClientToNAT)},
		{"Total Packets From NAT to Server", fmt.Sprintf("%d", c.NATToServer)},
		{"Loss Rate (incoming)", fmt.Sprintf("%.3f%%", c.LossIn()*100)},
	})
}

// Series draws an ASCII chart of ys (downsampled to width columns by
// averaging, scaled to height rows).
func Series(w io.Writer, title string, ys []float64, width, height int) {
	fmt.Fprintf(w, "%s\n", title)
	if len(ys) == 0 || width <= 0 || height <= 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	cols := resample(ys, width)
	max := 0.0
	for _, v := range cols {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(cols)))
	}
	for c, v := range cols {
		h := int(math.Round(v / max * float64(height)))
		for r := 0; r < h && r < height; r++ {
			grid[height-1-r][c] = '#'
		}
	}
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", row)
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", len(cols)))
	fmt.Fprintf(w, "  max=%.1f mean=%.1f n=%d\n\n", max, mean(ys), len(ys))
}

// VarianceTime renders the Fig 5 points and the three regional Hurst fits.
func VarianceTime(w io.Writer, points []hurst.Point, re analysis.RegionEstimates) {
	fmt.Fprintln(w, "Figure 5: variance-time plot (base interval 10 ms)")
	fmt.Fprintln(w, "  log10(m)  log10(var(X^m)/var(X))  blocks")
	for _, p := range points {
		if math.IsInf(p.Log10Var, 0) {
			continue
		}
		fmt.Fprintf(w, "  %8.3f  %22.4f  %d\n", p.Log10M, p.Log10Var, p.BlockCount)
	}
	fmt.Fprintf(w, "  H (m < 50ms)        = %.3f (slope %.3f, R2 %.3f)\n",
		re.SubTick.H, re.SubTick.Slope, re.SubTick.R2)
	fmt.Fprintf(w, "  H (50ms..30min)     = %.3f (slope %.3f, R2 %.3f)\n",
		re.Plateau.H, re.Plateau.Slope, re.Plateau.R2)
	fmt.Fprintf(w, "  H (m > 30min)       = %.3f (slope %.3f, R2 %.3f)\n\n",
		re.LongTerm.H, re.LongTerm.Slope, re.LongTerm.R2)
}

// SizePDF renders a packet-size distribution as per-bin probabilities.
func SizePDF(w io.Writer, title string, pdf []float64, binWidth int, maxBins int) {
	fmt.Fprintf(w, "%s\n", title)
	for i, p := range pdf {
		if i >= maxBins {
			break
		}
		bar := strings.Repeat("#", int(p*400))
		fmt.Fprintf(w, "  %4d-%-4d %.4f %s\n", i*binWidth, (i+1)*binWidth-1, p, bar)
	}
	fmt.Fprintln(w)
}

func resample(ys []float64, width int) []float64 {
	if len(ys) <= width {
		out := make([]float64, len(ys))
		copy(out, ys)
		return out
	}
	out := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * len(ys) / width
		hi := (c + 1) * len(ys) / width
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for i := lo; i < hi && i < len(ys); i++ {
			s += ys[i]
		}
		out[c] = s / float64(hi-lo)
	}
	return out
}

func mean(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	var s float64
	for _, y := range ys {
		s += y
	}
	return s / float64(len(ys))
}
