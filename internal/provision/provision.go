// Package provision turns the paper's measurements into the capacity
// planning its title promises: given the per-player resource budget the
// trace establishes (§III) and the burst structure of the server's 50 ms
// broadcast (§III-B), it sizes servers, checks last-mile links, and
// assesses whether a forwarding device can host game servers without the
// §IV-A failure mode.
//
// The device assessment encodes the paper's mechanism analytically. Every
// tick the server hands the device a back-to-back burst of one snapshot per
// player; draining the burst occupies the shared lookup engine while
// independently-arriving client packets pile up on their ingress queue. The
// paper's buffering argument is reproduced too: absorbing a full tick's
// spike in buffers delays packets by (burst + inbound)/capacity, which for
// the measured server and the SMC Barricade is "more than a quarter of the
// maximum tolerable latency" — so extra buffering trades loss for
// unacceptable lag, and only lookup capacity actually helps.
package provision

import (
	"errors"
	"fmt"
	"time"

	"cstrace/internal/netem"
	"cstrace/internal/units"
)

// PlayerBudget is the steady-state demand of one active player as seen at
// the server: packet rates and wire bit rates per direction.
type PlayerBudget struct {
	InPPS  float64 // client → server packets/sec
	OutPPS float64 // server → client packets/sec
	InBps  float64 // client → server wire bits/sec
	OutBps float64 // server → client wire bits/sec
}

// PaperBudget returns the per-active-player budget from Tables I-II: mean
// loads divided by the ≈18.05 mean concurrent players the trace carried.
func PaperBudget() PlayerBudget {
	const meanPlayers = 18.05
	return PlayerBudget{
		InPPS:  437.12 / meanPlayers,
		OutPPS: 360.99 / meanPlayers,
		InBps:  341e3 / meanPlayers,
		OutBps: 542e3 / meanPlayers,
	}
}

// TotalBps returns the duplex per-player bit rate (the paper's headline
// "40 kbps per player" uses slots rather than active players; both views
// derive from this).
func (b PlayerBudget) TotalBps() float64 { return b.InBps + b.OutBps }

// TotalPPS returns the duplex per-player packet rate.
func (b PlayerBudget) TotalPPS() float64 { return b.InPPS + b.OutPPS }

// ServerDemand is the aggregate demand of one game server.
type ServerDemand struct {
	Players int
	Tick    time.Duration

	MeanInPPS  float64
	MeanOutPPS float64
	MeanBps    float64
	// TickBurst is the synchronized packet burst emitted every tick: one
	// snapshot per player, back to back (§III-B: "the game server
	// deterministically flooding its clients with state updates about
	// every 50ms").
	TickBurst int
}

// Demand computes a server's demand under the linear-in-players model.
func Demand(b PlayerBudget, players int, tick time.Duration) ServerDemand {
	return ServerDemand{
		Players:    players,
		Tick:       tick,
		MeanInPPS:  b.InPPS * float64(players),
		MeanOutPPS: b.OutPPS * float64(players),
		MeanBps:    b.TotalBps() * float64(players),
		TickBurst:  players,
	}
}

// DeviceSpec describes a forwarding device in the terms that matter for
// small-packet traffic: lookup capacity and ingress queue depths.
type DeviceSpec struct {
	Name string
	// LookupPPS is the sustained route-lookup/forwarding rate in
	// packets/sec — the §IV-A bottleneck, not link bandwidth.
	LookupPPS float64
	// QueueIn/QueueOut are the per-direction ingress buffers in packets.
	QueueIn, QueueOut int
}

// Barricade returns the SMC7004AWBR spec the paper tested: a listed routing
// capacity of 1000-1500 pps (midpoint used) and shallow consumer buffers.
func Barricade() DeviceSpec {
	return DeviceSpec{Name: "SMC Barricade", LookupPPS: 1250, QueueIn: 18, QueueOut: 64}
}

// MidRangeRouter is a 10 kpps branch router of the era.
func MidRangeRouter() DeviceSpec {
	return DeviceSpec{Name: "mid-range router", LookupPPS: 10000, QueueIn: 128, QueueOut: 256}
}

// DefaultLatencyBudget is the maximum tolerable lag for a first-person
// shooter, taken from the low end of the 100-225 ms degradation range of
// MacKenzie & Ware (the paper's ref [33]); it is also the budget under
// which the paper's own arithmetic holds — buffering the measured server's
// ~35 ms tick spike on the Barricade then costs "more than a quarter of
// the maximum tolerable latency".
const DefaultLatencyBudget = 130 * time.Millisecond

// Assessment reports whether a device can host a set of game servers.
type Assessment struct {
	Device  DeviceSpec
	Servers int

	// Utilization is mean offered pps over lookup capacity; above 1 the
	// device is unconditionally overrun.
	Utilization float64
	// BurstDrain is the time the aligned per-tick burst monopolizes the
	// engine.
	BurstDrain time.Duration
	// InboundPileup is the number of client packets accumulating on the
	// WAN-side queue while the burst drains.
	InboundPileup float64
	// EstLossIn/EstLossOut are analytic per-direction loss estimates from
	// queue overflow during the tick cycle (zero when margins hold; the
	// simulator in internal/nat adds the service-jitter and slow-path
	// effects that produce loss even at nominal margins).
	EstLossIn, EstLossOut float64
	// SpikeBufferDelay is the delay absorbing one full tick's work in
	// buffers would impose: (burst + inbound during a tick) / capacity.
	SpikeBufferDelay time.Duration
	// LatencyFrac is SpikeBufferDelay over the latency budget; the paper
	// measured "more than a quarter" for the Barricade.
	LatencyFrac float64

	Feasible bool
	Reason   string
}

// Assess evaluates hosting n identical servers behind the device. The
// worst case is assumed: server ticks align, so bursts superpose.
func Assess(d DeviceSpec, demand ServerDemand, n int, latencyBudget time.Duration) (Assessment, error) {
	if n <= 0 {
		return Assessment{}, errors.New("provision: need at least one server")
	}
	if d.LookupPPS <= 0 {
		return Assessment{}, errors.New("provision: device has no lookup capacity")
	}
	if latencyBudget <= 0 {
		latencyBudget = DefaultLatencyBudget
	}
	a := Assessment{Device: d, Servers: n}
	inPPS := demand.MeanInPPS * float64(n)
	outPPS := demand.MeanOutPPS * float64(n)
	burst := demand.TickBurst * n
	tick := demand.Tick.Seconds()

	a.Utilization = (inPPS + outPPS) / d.LookupPPS
	drain := float64(burst) / d.LookupPPS
	a.BurstDrain = time.Duration(drain * float64(time.Second))
	a.InboundPileup = inPPS * drain

	// Outgoing loss: the burst itself must fit the LAN-side queue.
	if burst > d.QueueOut {
		a.EstLossOut = float64(burst-d.QueueOut) / float64(burst)
	}
	// Incoming loss: clients trickle in while the engine drains the
	// burst; overflow beyond the WAN-side queue is lost. Expressed as a
	// fraction of the inbound packets offered per tick.
	inPerTick := inPPS * tick
	if over := a.InboundPileup - float64(d.QueueIn); over > 0 && inPerTick > 0 {
		a.EstLossIn = over / inPerTick
		if a.EstLossIn > 1 {
			a.EstLossIn = 1
		}
	}
	// Unstable queues lose whatever exceeds capacity, on top of the
	// burst-phase losses.
	if a.Utilization > 1 {
		excess := 1 - 1/a.Utilization
		if a.EstLossIn < excess {
			a.EstLossIn = excess
		}
		if a.EstLossOut < excess {
			a.EstLossOut = excess
		}
	}

	perTickWork := float64(burst) + inPPS*tick
	a.SpikeBufferDelay = time.Duration(perTickWork / d.LookupPPS * float64(time.Second))
	a.LatencyFrac = float64(a.SpikeBufferDelay) / float64(latencyBudget)

	switch {
	case a.Utilization >= 1:
		a.Reason = fmt.Sprintf("mean load %.0f pps exceeds lookup capacity %.0f pps",
			inPPS+outPPS, d.LookupPPS)
	case a.EstLossOut > 0:
		a.Reason = fmt.Sprintf("tick burst of %d packets overflows %d-packet LAN queue",
			burst, d.QueueOut)
	case a.EstLossIn > 0:
		a.Reason = fmt.Sprintf("inbound pile-up %.1f packets overflows %d-packet WAN queue",
			a.InboundPileup, d.QueueIn)
	case a.LatencyFrac > 0.25:
		a.Reason = fmt.Sprintf("buffering the tick spike costs %v, over a quarter of the %v budget",
			a.SpikeBufferDelay.Round(time.Millisecond), latencyBudget)
	default:
		a.Feasible = true
		a.Reason = "within capacity, queue and latency margins"
	}
	return a, nil
}

// MaxServers returns the largest number of identical servers the device
// hosts feasibly under Assess, zero if even one server does not fit.
func MaxServers(d DeviceSpec, demand ServerDemand, latencyBudget time.Duration) int {
	n := 0
	for {
		a, err := Assess(d, demand, n+1, latencyBudget)
		if err != nil || !a.Feasible {
			return n
		}
		n++
		if n > 1<<20 { // defensive: demand must be degenerate
			return n
		}
	}
}

// RequiredLookupPPS returns the lookup capacity needed to host n servers
// with the spike-buffer delay held under frac of the latency budget — the
// provisioning inverse of Assess, and the paper's closing point that
// "increasing the peak route lookup capacity" is the fix.
func RequiredLookupPPS(demand ServerDemand, n int, latencyBudget time.Duration, frac float64) float64 {
	if latencyBudget <= 0 {
		latencyBudget = DefaultLatencyBudget
	}
	if frac <= 0 {
		frac = 0.25
	}
	inPPS := demand.MeanInPPS * float64(n)
	outPPS := demand.MeanOutPPS * float64(n)
	perTickWork := float64(demand.TickBurst*n) + inPPS*demand.Tick.Seconds()
	byDelay := perTickWork / (frac * latencyBudget.Seconds())
	byLoad := (inPPS + outPPS) * 1.25 // 80% utilization headroom
	if byDelay > byLoad {
		return byDelay
	}
	return byLoad
}

// LastMileReport is the saturation check for one access profile.
type LastMileReport struct {
	Profile netem.Profile
	// DownUtil/UpUtil are per-direction utilizations of the access link
	// by one player's flow.
	DownUtil, UpUtil float64
	// SaturationRatio is the paper's own comparison: the player's total
	// duplex demand over the narrowest direction of the access link
	// (§III-B compares the ~40 kbs per-player total against the 40-50 kbs
	// a 56k modem delivers).
	SaturationRatio float64
	// Saturated marks the paper's conclusion for this link class: the
	// game's fixed budget consumes essentially all of the narrowest
	// last-mile capacity.
	Saturated bool
	// Fits means both directions individually stay at or under 100%:
	// the game is playable on this link.
	Fits bool
}

// CheckLastMile evaluates one player's budget against an access profile.
// Server→client traffic rides the downlink, client→server the uplink.
func CheckLastMile(b PlayerBudget, p netem.Profile) LastMileReport {
	r := LastMileReport{Profile: p}
	r.DownUtil = b.OutBps / p.DownBps
	r.UpUtil = b.InBps / p.UpBps
	narrow := p.DownBps
	if p.UpBps < narrow {
		narrow = p.UpBps
	}
	r.SaturationRatio = b.TotalBps() / narrow
	r.Saturated = r.SaturationRatio >= 0.9
	max := r.DownUtil
	if r.UpUtil > max {
		max = r.UpUtil
	}
	r.Fits = max <= 1.0
	return r
}

// Plan is a deployment plan for a target concurrent player count.
type Plan struct {
	Players int
	Slots   int
	Servers int

	TotalBps     float64
	TotalMeanPPS float64
	// PeakPPS is the short-timescale peak the routers actually see (the
	// paper's Fig 6 view): with server ticks aligned, every broadcast
	// burst lands within one 10 ms window, so the windowed rate is
	// burst/10 ms plus the smooth inbound flow. For the paper's single
	// server this gives ≈2700 pps against a 798 pps mean — the ≈3×
	// burst-to-mean ratio visible in Fig 6.
	PeakPPS float64
	// MinLookupPPS is the router capacity recommendation.
	MinLookupPPS float64
}

// PlanFor sizes a deployment: how many slots-sized servers carry the target
// population, and what the network in front of them must sustain.
func PlanFor(b PlayerBudget, players, slots int, tick time.Duration) (Plan, error) {
	if players <= 0 || slots <= 0 {
		return Plan{}, errors.New("provision: players and slots must be positive")
	}
	servers := (players + slots - 1) / slots
	demand := Demand(b, slots, tick)
	p := Plan{
		Players:      players,
		Slots:        slots,
		Servers:      servers,
		TotalBps:     b.TotalBps() * float64(players),
		TotalMeanPPS: b.TotalPPS() * float64(players),
	}
	const peakWindow = 0.010 // seconds; Fig 6's bin width
	burst := float64(demand.TickBurst * servers)
	p.PeakPPS = burst/peakWindow + b.InPPS*float64(players)
	p.MinLookupPPS = RequiredLookupPPS(demand, servers, DefaultLatencyBudget, 0.25)
	return p, nil
}

// PerSlotKbs reproduces the paper's headline: bandwidth divided by slots.
func PerSlotKbs(b PlayerBudget, meanPlayers float64, slots int) units.BitsPerSecond {
	if slots == 0 {
		return 0
	}
	return units.BitsPerSecond(b.TotalBps() * meanPlayers / float64(slots))
}
