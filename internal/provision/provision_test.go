package provision

import (
	"math"
	"testing"
	"time"

	"cstrace/internal/netem"
)

func TestPaperBudget(t *testing.T) {
	b := PaperBudget()
	// Per active player: ≈24.2 pps in, ≈20 pps out, ≈48.9 kbs duplex.
	if b.InPPS < 23 || b.InPPS > 26 {
		t.Errorf("InPPS = %.2f", b.InPPS)
	}
	if b.OutPPS < 19 || b.OutPPS > 21 {
		t.Errorf("OutPPS = %.2f", b.OutPPS)
	}
	if tb := b.TotalBps(); tb < 47e3 || tb > 51e3 {
		t.Errorf("TotalBps = %.0f", tb)
	}
	// The headline: bandwidth per slot ≈ 40 kbs (modem saturation).
	kbs := float64(PerSlotKbs(b, 18.05, 22)) / 1e3
	if kbs < 38 || kbs > 42 {
		t.Errorf("per-slot = %.1f kbs, want ≈40", kbs)
	}
}

func TestDemandLinear(t *testing.T) {
	b := PaperBudget()
	d1 := Demand(b, 1, 50*time.Millisecond)
	d22 := Demand(b, 22, 50*time.Millisecond)
	if math.Abs(d22.MeanBps/d1.MeanBps-22) > 1e-9 {
		t.Error("demand not linear in players")
	}
	if d22.TickBurst != 22 {
		t.Errorf("TickBurst = %d, want 22 (one snapshot per player)", d22.TickBurst)
	}
}

func TestAssessBarricadeOneServer(t *testing.T) {
	// The paper's exact scenario: ~20 active players behind the
	// Barricade. The mean load fits the 1250 pps engine, but the device
	// must be flagged infeasible: buffering the tick spike alone eats
	// more than a quarter of the latency budget — the paper's argument
	// for why buffering cannot save this device.
	d := Demand(PaperBudget(), 20, 50*time.Millisecond)
	a, err := Assess(Barricade(), d, 1, DefaultLatencyBudget)
	if err != nil {
		t.Fatal(err)
	}
	if a.Utilization >= 1 {
		t.Errorf("utilization %.2f: mean load should fit the engine", a.Utilization)
	}
	if a.Feasible {
		t.Error("Barricade must be infeasible for a busy server")
	}
	if a.LatencyFrac <= 0.25 {
		t.Errorf("LatencyFrac = %.3f, want > 0.25 (the paper's quarter)", a.LatencyFrac)
	}
	// Burst drain: 20 packets / 1250 pps = 16 ms.
	if a.BurstDrain < 15*time.Millisecond || a.BurstDrain > 17*time.Millisecond {
		t.Errorf("BurstDrain = %v, want ≈16 ms", a.BurstDrain)
	}
	// Inbound pile-up during the drain: ≈ 484 pps × 16 ms ≈ 7.7 packets.
	if a.InboundPileup < 5 || a.InboundPileup > 11 {
		t.Errorf("InboundPileup = %.1f", a.InboundPileup)
	}
}

func TestAssessMidRangeRouterFeasible(t *testing.T) {
	d := Demand(PaperBudget(), 20, 50*time.Millisecond)
	a, err := Assess(MidRangeRouter(), d, 1, DefaultLatencyBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Errorf("10 kpps router should host one server: %s", a.Reason)
	}
}

func TestAssessLossMonotoneInServers(t *testing.T) {
	d := Demand(PaperBudget(), 20, 50*time.Millisecond)
	dev := MidRangeRouter()
	prevIn, prevOut := -1.0, -1.0
	for n := 1; n <= 40; n++ {
		a, err := Assess(dev, d, n, DefaultLatencyBudget)
		if err != nil {
			t.Fatal(err)
		}
		if a.EstLossIn < prevIn || a.EstLossOut < prevOut {
			t.Fatalf("loss estimate decreased at n=%d", n)
		}
		prevIn, prevOut = a.EstLossIn, a.EstLossOut
	}
	// At 40 servers (≈35 kpps offered on a 10 kpps engine) losses must
	// be substantial.
	a, _ := Assess(dev, d, 40, DefaultLatencyBudget)
	if a.Utilization < 1 || a.EstLossIn < 0.5 {
		t.Errorf("40 servers: util %.2f loss %.2f, expected overload", a.Utilization, a.EstLossIn)
	}
}

func TestAssessValidation(t *testing.T) {
	d := Demand(PaperBudget(), 20, 50*time.Millisecond)
	if _, err := Assess(Barricade(), d, 0, 0); err == nil {
		t.Error("accepted zero servers")
	}
	if _, err := Assess(DeviceSpec{}, d, 1, 0); err == nil {
		t.Error("accepted zero-capacity device")
	}
}

func TestMaxServers(t *testing.T) {
	d := Demand(PaperBudget(), 20, 50*time.Millisecond)
	if n := MaxServers(Barricade(), d, DefaultLatencyBudget); n != 0 {
		t.Errorf("Barricade MaxServers = %d, want 0", n)
	}
	n10k := MaxServers(MidRangeRouter(), d, DefaultLatencyBudget)
	if n10k < 1 {
		t.Fatalf("mid-range router hosts %d servers, want ≥ 1", n10k)
	}
	// A 10× bigger device must host more servers (more capacity and
	// deeper queues).
	big := DeviceSpec{Name: "big", LookupPPS: 100000, QueueIn: 1024, QueueOut: 2048}
	nBig := MaxServers(big, d, DefaultLatencyBudget)
	if nBig <= n10k {
		t.Errorf("big router %d ≤ mid-range %d", nBig, n10k)
	}
}

func TestRequiredLookupPPSRoundTrip(t *testing.T) {
	// A device provisioned to the recommendation must assess feasible.
	d := Demand(PaperBudget(), 20, 50*time.Millisecond)
	for _, n := range []int{1, 4, 16} {
		need := RequiredLookupPPS(d, n, DefaultLatencyBudget, 0.25)
		dev := DeviceSpec{
			Name:      "provisioned",
			LookupPPS: need,
			QueueIn:   1 + int(d.MeanInPPS*float64(n)*need/need), // ≥ pile-up
			QueueOut:  d.TickBurst*n + 1,
		}
		// Generous queues; the binding constraints are capacity/latency.
		dev.QueueIn = 10000
		dev.QueueOut = 10000
		a, err := Assess(dev, d, n, DefaultLatencyBudget)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Feasible {
			t.Errorf("n=%d: provisioned device infeasible: %s", n, a.Reason)
		}
		if a.LatencyFrac > 0.2501 {
			t.Errorf("n=%d: latency frac %.4f above target", n, a.LatencyFrac)
		}
	}
}

func TestCheckLastMile(t *testing.T) {
	b := PaperBudget()
	modem := CheckLastMile(b, netem.Modem56k())
	if !modem.Saturated {
		t.Errorf("modem not saturated: down %.2f up %.2f", modem.DownUtil, modem.UpUtil)
	}
	if modem.SaturationRatio < 1 {
		t.Errorf("modem saturation ratio %.2f, want ≥ 1 (the paper's arithmetic)", modem.SaturationRatio)
	}
	if !modem.Fits {
		t.Error("the game is designed to remain playable on a modem")
	}
	lan := CheckLastMile(b, netem.LAN10M())
	if lan.Saturated || !lan.Fits {
		t.Errorf("LAN should be comfortable: %+v", lan)
	}
	dsl := CheckLastMile(b, netem.DSL())
	if dsl.Saturated {
		t.Errorf("DSL should not be saturated: ratio %.2f", dsl.SaturationRatio)
	}
	// Downstream demand ≈30 kbs into a 45 kbs modem, upstream ≈18.9 kbs
	// into 31.2 kbs: busy in both directions.
	if modem.DownUtil < 0.5 || modem.UpUtil < 0.5 {
		t.Errorf("modem utilizations too low: %+v", modem)
	}
}

func TestPlanFor(t *testing.T) {
	b := PaperBudget()
	p, err := PlanFor(b, 1000, 22, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if p.Servers != 46 { // ceil(1000/22)
		t.Errorf("servers = %d, want 46", p.Servers)
	}
	// 1000 players × ≈48.9 kbs ≈ 49 Mbs.
	if p.TotalBps < 45e6 || p.TotalBps > 53e6 {
		t.Errorf("TotalBps = %.0f", p.TotalBps)
	}
	if p.TotalMeanPPS < 40000 || p.TotalMeanPPS > 50000 {
		t.Errorf("TotalMeanPPS = %.0f", p.TotalMeanPPS)
	}
	if p.PeakPPS <= p.TotalMeanPPS {
		t.Error("peak must exceed mean under aligned bursts")
	}
	if p.MinLookupPPS <= 0 {
		t.Error("no capacity recommendation")
	}
	if _, err := PlanFor(b, 0, 22, 50*time.Millisecond); err == nil {
		t.Error("accepted zero players")
	}
}

func TestScaleStudyMonotone(t *testing.T) {
	// Sanity for the "Microsoft/Sony launch" extrapolation in §IV-A:
	// requirements must scale linearly with population.
	b := PaperBudget()
	p1, _ := PlanFor(b, 10000, 22, 50*time.Millisecond)
	p2, _ := PlanFor(b, 20000, 22, 50*time.Millisecond)
	if r := p2.TotalBps / p1.TotalBps; math.Abs(r-2) > 1e-9 {
		t.Errorf("bandwidth ratio = %f, want 2", r)
	}
	if p2.Servers < 2*p1.Servers-1 {
		t.Errorf("server count not ~linear: %d vs %d", p1.Servers, p2.Servers)
	}
}

func TestPlanPeakMatchesFig6Ratio(t *testing.T) {
	// One 22-slot server at the paper's occupancy: the 10 ms-window peak
	// must sit near Fig 6's ≈2400-2700 pps against the ≈800 pps mean.
	b := PaperBudget()
	p, err := PlanFor(b, 18, 22, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ratio := p.PeakPPS / p.TotalMeanPPS
	if ratio < 2 || ratio > 5 {
		t.Errorf("peak/mean = %.1f, want ≈3 (Fig 6)", ratio)
	}
}
