package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 65535)
	packets := [][]byte{
		[]byte("first packet"),
		[]byte("second"),
		{},
		bytes.Repeat([]byte{0xab}, 1500),
	}
	base := time.Date(2002, 4, 11, 8, 55, 4, 123456789, time.UTC)
	for i, p := range packets {
		ci := CaptureInfo{
			Timestamp:     base.Add(time.Duration(i) * 50 * time.Millisecond),
			CaptureLength: len(p),
			Length:        len(p),
		}
		if err := w.WritePacket(ci, p); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().LinkType != LinkTypeEthernet {
		t.Errorf("link type = %d", r.Header().LinkType)
	}
	if !r.Header().Nanosecond {
		t.Error("writer should emit nanosecond format")
	}
	for i, want := range packets {
		ci, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("packet %d data mismatch", i)
		}
		wantT := base.Add(time.Duration(i) * 50 * time.Millisecond)
		if !ci.Timestamp.Equal(wantT) {
			t.Errorf("packet %d timestamp = %v, want %v", i, ci.Timestamp, wantT)
		}
		if ci.Length != len(want) || ci.CaptureLength != len(want) {
			t.Errorf("packet %d lengths = %d/%d", i, ci.CaptureLength, ci.Length)
		}
	}
	if _, _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("want io.EOF at end, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte, secs uint32, nanos uint32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, LinkTypeEthernet, 65535)
		if err := w.WriteHeader(); err != nil {
			return false
		}
		ts := time.Unix(int64(secs), int64(nanos%1e9)).UTC()
		kept := make([][]byte, 0, len(payloads))
		for _, p := range payloads {
			if len(p) > 65535 {
				continue
			}
			kept = append(kept, p)
			ci := CaptureInfo{Timestamp: ts, CaptureLength: len(p), Length: len(p)}
			if err := w.WritePacket(ci, p); err != nil {
				return false
			}
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range kept {
			ci, data, err := r.ReadPacket()
			if err != nil || !bytes.Equal(data, want) || !ci.Timestamp.Equal(ts) {
				return false
			}
		}
		_, _, err = r.ReadPacket()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMicrosecondVariant(t *testing.T) {
	// Hand-build a microsecond, big-endian file with one packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 1018515304) // 2002-04-11 08:55:04 UTC
	binary.BigEndian.PutUint32(rec[4:8], 500000)     // 0.5 s in µs
	binary.BigEndian.PutUint32(rec[8:12], 3)
	binary.BigEndian.PutUint32(rec[12:16], 80)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().Nanosecond {
		t.Error("should be microsecond variant")
	}
	ci, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if ci.Timestamp.Nanosecond() != 500000000 {
		t.Errorf("sub-second = %d", ci.Timestamp.Nanosecond())
	}
	if ci.Length != 80 || ci.CaptureLength != 3 || len(data) != 3 {
		t.Errorf("ci = %+v", ci)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewReader(make([]byte, 24))
	if _, err := NewReader(buf); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	buf := bytes.NewReader([]byte{1, 2, 3})
	if _, err := NewReader(buf); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestTruncatedPacketBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 65535)
	ci := CaptureInfo{Timestamp: time.Now(), CaptureLength: 10, Length: 10}
	if err := w.WritePacket(ci, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 100)
	ci := CaptureInfo{Timestamp: time.Now(), CaptureLength: 5, Length: 5}
	if err := w.WritePacket(ci, make([]byte, 6)); err == nil {
		t.Error("want error for mismatched capture length")
	}
	big := CaptureInfo{Timestamp: time.Now(), CaptureLength: 200, Length: 200}
	if err := w.WritePacket(big, make([]byte, 200)); err != ErrSnapLen {
		t.Errorf("err = %v, want ErrSnapLen", err)
	}
}

func TestUnsupportedVersion(t *testing.T) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], 3) // future major version
	if _, err := NewReader(bytes.NewReader(hdr)); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}
