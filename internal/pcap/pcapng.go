package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcapng block type codes (from the pcapng specification).
const (
	blockSHB uint32 = 0x0a0d0d0a // Section Header Block
	blockIDB uint32 = 0x00000001 // Interface Description Block
	blockSPB uint32 = 0x00000003 // Simple Packet Block
	blockEPB uint32 = 0x00000006 // Enhanced Packet Block
)

// byteOrderMagic is the SHB field that reveals the section's endianness.
const byteOrderMagic = 0x1a2b3c4d

// maxBlockLen rejects absurd block lengths before allocating: no block the
// tooling writes or reads legitimately exceeds a jumbo frame plus headroom,
// and a corrupt length field must not become a multi-gigabyte allocation.
const maxBlockLen = 16 << 20

// pcapng option codes used here.
const (
	optEndOfOpt  uint16 = 0
	optIfTsResol uint16 = 9
)

// pcapng errors.
var (
	ErrNgBadMagic    = errors.New("pcapng: not a pcapng file")
	ErrNgBadBlockLen = errors.New("pcapng: block length mismatch")
	ErrNgNoInterface = errors.New("pcapng: packet references unknown interface")
)

// NgWriter writes a pcapng capture: one section, one interface, enhanced
// packet blocks with nanosecond timestamps. This covers what the trace
// tooling needs; the classic Writer remains the default interchange format.
type NgWriter struct {
	w        io.Writer
	linkType uint32
	snapLen  uint32
	wrote    bool
}

// NewNgWriter creates a pcapng writer for a single interface of the given
// link type and snap length.
func NewNgWriter(w io.Writer, linkType, snapLen uint32) *NgWriter {
	return &NgWriter{w: w, linkType: linkType, snapLen: snapLen}
}

// writeBlock emits a complete block: type, length, body (already padded),
// trailing length.
func (w *NgWriter) writeBlock(typ uint32, body []byte) error {
	total := uint32(12 + len(body))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], typ)
	binary.LittleEndian.PutUint32(hdr[4:8], total)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], total)
	_, err := w.w.Write(tail[:])
	return err
}

// WriteHeader writes the section header and interface description. It is
// called automatically by the first WritePacket.
func (w *NgWriter) WriteHeader() error {
	if w.wrote {
		return nil
	}
	w.wrote = true

	// SHB body: byte-order magic, version 1.0, section length unknown (-1).
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:6], 1)
	binary.LittleEndian.PutUint16(shb[6:8], 0)
	binary.LittleEndian.PutUint64(shb[8:16], ^uint64(0))
	if err := w.writeBlock(blockSHB, shb); err != nil {
		return err
	}

	// IDB body: link type, reserved, snaplen, if_tsresol=9 (nanoseconds),
	// end of options.
	idb := make([]byte, 8, 8+8)
	binary.LittleEndian.PutUint16(idb[0:2], uint16(w.linkType))
	binary.LittleEndian.PutUint32(idb[4:8], w.snapLen)
	opt := make([]byte, 8)
	binary.LittleEndian.PutUint16(opt[0:2], optIfTsResol)
	binary.LittleEndian.PutUint16(opt[2:4], 1)
	opt[4] = 9 // 10^-9 seconds
	// bytes 5-7: padding to 32 bits; end-of-options follows as zeros.
	idb = append(idb, opt...)
	var end [4]byte
	idb = append(idb, end[:]...)
	return w.writeBlock(blockIDB, idb)
}

// WritePacket writes one enhanced packet block.
func (w *NgWriter) WritePacket(ci CaptureInfo, data []byte) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	if len(data) != ci.CaptureLength {
		return fmt.Errorf("pcap: capture length %d does not match data length %d",
			ci.CaptureLength, len(data))
	}
	if uint32(len(data)) > w.snapLen && w.snapLen > 0 {
		return ErrSnapLen
	}
	ts := uint64(ci.Timestamp.UnixNano())
	pad := (4 - len(data)%4) % 4
	body := make([]byte, 20+len(data)+pad)
	binary.LittleEndian.PutUint32(body[0:4], 0) // interface 0
	binary.LittleEndian.PutUint32(body[4:8], uint32(ts>>32))
	binary.LittleEndian.PutUint32(body[8:12], uint32(ts))
	binary.LittleEndian.PutUint32(body[12:16], uint32(ci.CaptureLength))
	binary.LittleEndian.PutUint32(body[16:20], uint32(ci.Length))
	copy(body[20:], data)
	return w.writeBlock(blockEPB, body)
}

// ngInterface records what the reader needs per interface: link type,
// snap length and timestamp resolution (ticks per second).
type ngInterface struct {
	linkType uint32
	snapLen  uint32
	resol    uint64
}

// NgReader reads a pcapng capture. Unknown block types are skipped; multiple
// interfaces and a new section header mid-stream (a concatenated capture)
// are handled.
type NgReader struct {
	r      io.Reader
	order  binary.ByteOrder
	ifaces []ngInterface
	buf    []byte
}

// NewNgReader parses the initial section header and returns a reader.
func NewNgReader(r io.Reader) (*NgReader, error) {
	rd := &NgReader{r: r}
	typ, body, err := rd.readBlockStart()
	if err != nil {
		return nil, err
	}
	if typ != blockSHB {
		return nil, ErrNgBadMagic
	}
	if err := rd.parseSHB(body); err != nil {
		return nil, err
	}
	return rd, nil
}

// readBlockStart reads one complete block and returns its type and body
// (without the length fields). Before the first SHB is parsed, the order is
// detected from the SHB itself.
func (r *NgReader) readBlockStart() (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, ErrTruncated
	}
	typ := binary.LittleEndian.Uint32(hdr[0:4])
	order := r.order
	if typ == blockSHB || order == nil {
		// Detect endianness from the byte-order magic that follows.
		var bom [4]byte
		if _, err := io.ReadFull(r.r, bom[:]); err != nil {
			return 0, nil, ErrTruncated
		}
		switch {
		case binary.LittleEndian.Uint32(bom[:]) == byteOrderMagic:
			order = binary.LittleEndian
		case binary.BigEndian.Uint32(bom[:]) == byteOrderMagic:
			order = binary.BigEndian
		default:
			return 0, nil, ErrNgBadMagic
		}
		r.order = order
		typ = order.Uint32(hdr[0:4])
		if typ != blockSHB {
			return 0, nil, ErrNgBadMagic
		}
		total := order.Uint32(hdr[4:8])
		if total < 12+4 || total%4 != 0 || total > maxBlockLen {
			return 0, nil, ErrNgBadBlockLen
		}
		body := make([]byte, total-12)
		copy(body, bom[:])
		if _, err := io.ReadFull(r.r, body[4:]); err != nil {
			return 0, nil, ErrTruncated
		}
		return r.finishBlock(typ, total, body)
	}
	typ = order.Uint32(hdr[0:4])
	total := order.Uint32(hdr[4:8])
	if total < 12 || total%4 != 0 || total > maxBlockLen {
		return 0, nil, ErrNgBadBlockLen
	}
	if cap(r.buf) < int(total-12) {
		r.buf = make([]byte, total-12)
	}
	body := r.buf[:total-12]
	if _, err := io.ReadFull(r.r, body); err != nil {
		return 0, nil, ErrTruncated
	}
	return r.finishBlock(typ, total, body)
}

// finishBlock validates the trailing block length.
func (r *NgReader) finishBlock(typ, total uint32, body []byte) (uint32, []byte, error) {
	var tail [4]byte
	if _, err := io.ReadFull(r.r, tail[:]); err != nil {
		return 0, nil, ErrTruncated
	}
	if r.order.Uint32(tail[:]) != total {
		return 0, nil, ErrNgBadBlockLen
	}
	return typ, body, nil
}

// parseSHB starts a new section: interfaces reset, endianness already set.
func (r *NgReader) parseSHB(body []byte) error {
	if len(body) < 16 {
		return ErrTruncated
	}
	if major := r.order.Uint16(body[4:6]); major != 1 {
		return ErrBadVersion
	}
	r.ifaces = r.ifaces[:0]
	return nil
}

// parseIDB registers an interface.
func (r *NgReader) parseIDB(body []byte) error {
	if len(body) < 8 {
		return ErrTruncated
	}
	iface := ngInterface{
		linkType: uint32(r.order.Uint16(body[0:2])),
		snapLen:  r.order.Uint32(body[4:8]),
		resol:    1_000_000, // default: microseconds
	}
	// Walk options for if_tsresol.
	opts := body[8:]
	for len(opts) >= 4 {
		code := r.order.Uint16(opts[0:2])
		olen := int(r.order.Uint16(opts[2:4]))
		opts = opts[4:]
		if code == optEndOfOpt {
			break
		}
		if olen > len(opts) {
			return ErrTruncated
		}
		if code == optIfTsResol && olen >= 1 {
			v := opts[0]
			if v&0x80 != 0 {
				iface.resol = 1 << (v & 0x7f)
			} else {
				iface.resol = 1
				for i := byte(0); i < v; i++ {
					iface.resol *= 10
				}
			}
		}
		opts = opts[(olen+3)/4*4:]
	}
	r.ifaces = append(r.ifaces, iface)
	return nil
}

// Interfaces returns the number of interfaces seen in the current section.
func (r *NgReader) Interfaces() int { return len(r.ifaces) }

// LinkType returns the link type of interface 0, or LinkTypeEthernet when no
// interface block has been seen yet.
func (r *NgReader) LinkType() uint32 {
	if len(r.ifaces) == 0 {
		return LinkTypeEthernet
	}
	return r.ifaces[0].linkType
}

// ReadPacket returns the next packet in the capture, skipping non-packet
// blocks. The data slice is reused across calls; copy it if it must outlive
// the next read. io.EOF marks a clean end of file.
func (r *NgReader) ReadPacket() (CaptureInfo, []byte, error) {
	for {
		typ, body, err := r.readBlockStart()
		if err != nil {
			return CaptureInfo{}, nil, err
		}
		switch typ {
		case blockSHB:
			if err := r.parseSHB(body); err != nil {
				return CaptureInfo{}, nil, err
			}
		case blockIDB:
			if err := r.parseIDB(body); err != nil {
				return CaptureInfo{}, nil, err
			}
		case blockEPB:
			return r.parseEPB(body)
		case blockSPB:
			return r.parseSPB(body)
		default:
			// Skip name resolution, statistics and custom blocks.
		}
	}
}

// parseEPB decodes an enhanced packet block.
func (r *NgReader) parseEPB(body []byte) (CaptureInfo, []byte, error) {
	if len(body) < 20 {
		return CaptureInfo{}, nil, ErrTruncated
	}
	ifID := r.order.Uint32(body[0:4])
	if int(ifID) >= len(r.ifaces) {
		return CaptureInfo{}, nil, ErrNgNoInterface
	}
	iface := r.ifaces[ifID]
	ts := uint64(r.order.Uint32(body[4:8]))<<32 | uint64(r.order.Uint32(body[8:12]))
	capLen := r.order.Uint32(body[12:16])
	origLen := r.order.Uint32(body[16:20])
	if int(capLen) > len(body)-20 {
		return CaptureInfo{}, nil, ErrTruncated
	}
	sec := ts / iface.resol
	frac := ts % iface.resol
	nanos := frac * uint64(time.Second) / iface.resol
	ci := CaptureInfo{
		Timestamp:     time.Unix(int64(sec), int64(nanos)).UTC(),
		CaptureLength: int(capLen),
		Length:        int(origLen),
	}
	return ci, body[20 : 20+capLen], nil
}

// parseSPB decodes a simple packet block: no timestamp, interface 0, capture
// length implied by the block length bounded by the snap length.
func (r *NgReader) parseSPB(body []byte) (CaptureInfo, []byte, error) {
	if len(body) < 4 {
		return CaptureInfo{}, nil, ErrTruncated
	}
	if len(r.ifaces) == 0 {
		return CaptureInfo{}, nil, ErrNgNoInterface
	}
	origLen := r.order.Uint32(body[0:4])
	capLen := uint32(len(body) - 4)
	if snap := r.ifaces[0].snapLen; snap > 0 && origLen < capLen {
		capLen = origLen
	}
	ci := CaptureInfo{
		Timestamp:     time.Unix(0, 0).UTC(),
		CaptureLength: int(capLen),
		Length:        int(origLen),
	}
	return ci, body[4 : 4+capLen], nil
}
