// Package pcap reads and writes classic libpcap capture files, the format
// the original study's tcpdump trace would have been stored in. Both the
// microsecond (magic 0xa1b2c3d4) and nanosecond (0xa1b23c4d) variants are
// supported, in either byte order.
//
// Only the stdlib is used; the format is simple enough that binding libpcap
// (as gopacket does) buys nothing for file processing.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers for the classic pcap format.
const (
	MagicMicroseconds = 0xa1b2c3d4
	MagicNanoseconds  = 0xa1b23c4d
)

// LinkType values (from the pcap specification).
const (
	LinkTypeNull     uint32 = 0
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101
)

// Header errors.
var (
	ErrBadMagic   = errors.New("pcap: bad magic number")
	ErrBadVersion = errors.New("pcap: unsupported version")
	ErrTruncated  = errors.New("pcap: truncated file")
	ErrSnapLen    = errors.New("pcap: capture exceeds snap length")
)

// FileHeader is the 24-byte global header.
type FileHeader struct {
	Nanosecond   bool // nanosecond timestamp variant
	VersionMajor uint16
	VersionMinor uint16
	SnapLen      uint32
	LinkType     uint32
}

// CaptureInfo describes one captured packet (gopacket's CaptureInfo).
type CaptureInfo struct {
	// Timestamp is the capture time.
	Timestamp time.Time
	// CaptureLength is the number of bytes actually stored.
	CaptureLength int
	// Length is the original wire length of the packet.
	Length int
}

// Writer writes a pcap file.
type Writer struct {
	w       io.Writer
	hdr     FileHeader
	wrote   bool
	scratch [16]byte
}

// NewWriter creates a Writer with the given link type and snap length.
// Timestamps are written with nanosecond resolution.
func NewWriter(w io.Writer, linkType uint32, snapLen uint32) *Writer {
	return &Writer{w: w, hdr: FileHeader{
		Nanosecond:   true,
		VersionMajor: 2,
		VersionMinor: 4,
		SnapLen:      snapLen,
		LinkType:     linkType,
	}}
}

// WriteHeader writes the global header. It is called automatically by the
// first WritePacket.
func (w *Writer) WriteHeader() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	var b [24]byte
	magic := uint32(MagicMicroseconds)
	if w.hdr.Nanosecond {
		magic = MagicNanoseconds
	}
	binary.LittleEndian.PutUint32(b[0:4], magic)
	binary.LittleEndian.PutUint16(b[4:6], w.hdr.VersionMajor)
	binary.LittleEndian.PutUint16(b[6:8], w.hdr.VersionMinor)
	// thiszone and sigfigs are zero.
	binary.LittleEndian.PutUint32(b[16:20], w.hdr.SnapLen)
	binary.LittleEndian.PutUint32(b[20:24], w.hdr.LinkType)
	_, err := w.w.Write(b[:])
	return err
}

// WritePacket writes one packet record. data may be shorter than
// ci.Length (a snapped capture) but not longer than SnapLen.
func (w *Writer) WritePacket(ci CaptureInfo, data []byte) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	if len(data) != ci.CaptureLength {
		return fmt.Errorf("pcap: capture length %d does not match data length %d",
			ci.CaptureLength, len(data))
	}
	if uint32(len(data)) > w.hdr.SnapLen {
		return ErrSnapLen
	}
	sec := ci.Timestamp.Unix()
	var sub int64
	if w.hdr.Nanosecond {
		sub = int64(ci.Timestamp.Nanosecond())
	} else {
		sub = int64(ci.Timestamp.Nanosecond() / 1000)
	}
	b := w.scratch[:16]
	binary.LittleEndian.PutUint32(b[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(b[4:8], uint32(sub))
	binary.LittleEndian.PutUint32(b[8:12], uint32(ci.CaptureLength))
	binary.LittleEndian.PutUint32(b[12:16], uint32(ci.Length))
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// Reader reads a pcap file.
type Reader struct {
	r       io.Reader
	hdr     FileHeader
	order   binary.ByteOrder
	scratch [16]byte
	buf     []byte
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var b [24]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(b[0:4])
	magicBE := binary.BigEndian.Uint32(b[0:4])
	switch {
	case magicLE == MagicMicroseconds:
		rd.order = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		rd.order, rd.hdr.Nanosecond = binary.LittleEndian, true
	case magicBE == MagicMicroseconds:
		rd.order = binary.BigEndian
	case magicBE == MagicNanoseconds:
		rd.order, rd.hdr.Nanosecond = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	rd.hdr.VersionMajor = rd.order.Uint16(b[4:6])
	rd.hdr.VersionMinor = rd.order.Uint16(b[6:8])
	if rd.hdr.VersionMajor != 2 {
		return nil, ErrBadVersion
	}
	rd.hdr.SnapLen = rd.order.Uint32(b[16:20])
	rd.hdr.LinkType = rd.order.Uint32(b[20:24])
	return rd, nil
}

// Header returns the parsed global header.
func (r *Reader) Header() FileHeader { return r.hdr }

// ReadPacket returns the next packet. The data slice is reused across calls;
// copy it if it must outlive the next read. io.EOF marks a clean end of
// file.
func (r *Reader) ReadPacket() (CaptureInfo, []byte, error) {
	b := r.scratch[:16]
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF {
			return CaptureInfo{}, nil, io.EOF
		}
		return CaptureInfo{}, nil, ErrTruncated
	}
	sec := r.order.Uint32(b[0:4])
	sub := r.order.Uint32(b[4:8])
	capLen := r.order.Uint32(b[8:12])
	origLen := r.order.Uint32(b[12:16])
	if capLen > r.hdr.SnapLen && r.hdr.SnapLen > 0 {
		return CaptureInfo{}, nil, ErrSnapLen
	}
	if cap(r.buf) < int(capLen) {
		r.buf = make([]byte, capLen)
	}
	data := r.buf[:capLen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		return CaptureInfo{}, nil, ErrTruncated
	}
	nanos := int64(sub)
	if !r.hdr.Nanosecond {
		nanos *= 1000
	}
	ci := CaptureInfo{
		Timestamp:     time.Unix(int64(sec), nanos).UTC(),
		CaptureLength: int(capLen),
		Length:        int(origLen),
	}
	return ci, data, nil
}
