package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func writeNgCapture(t *testing.T, packets [][]byte, times []time.Time) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewNgWriter(&buf, LinkTypeEthernet, 65535)
	for i, p := range packets {
		ci := CaptureInfo{Timestamp: times[i], CaptureLength: len(p), Length: len(p)}
		if err := w.WritePacket(ci, p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestNgRoundTrip(t *testing.T) {
	base := time.Date(2002, 4, 11, 8, 55, 4, 123456789, time.UTC)
	packets := [][]byte{
		[]byte("first packet"),
		[]byte("x"),                  // 1 byte: exercises padding
		bytes.Repeat([]byte{7}, 101), // odd length > 4-byte pad
	}
	times := []time.Time{base, base.Add(50 * time.Millisecond), base.Add(time.Second)}
	raw := writeNgCapture(t, packets, times)

	r, err := NewNgReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range packets {
		ci, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("packet %d data = %q, want %q", i, data, want)
		}
		if !ci.Timestamp.Equal(times[i]) {
			t.Errorf("packet %d ts = %v, want %v", i, ci.Timestamp, times[i])
		}
		if ci.Length != len(want) || ci.CaptureLength != len(want) {
			t.Errorf("packet %d lengths = %d/%d", i, ci.CaptureLength, ci.Length)
		}
	}
	if _, _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	if r.Interfaces() != 1 {
		t.Errorf("Interfaces = %d", r.Interfaces())
	}
}

func TestNgRejectsClassicPcap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 65535)
	ci := CaptureInfo{Timestamp: time.Unix(1, 0), CaptureLength: 2, Length: 2}
	if err := w.WritePacket(ci, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNgReader(bytes.NewReader(buf.Bytes())); err != ErrNgBadMagic {
		t.Errorf("err = %v, want ErrNgBadMagic", err)
	}
}

func TestNgTruncatedFile(t *testing.T) {
	raw := writeNgCapture(t, [][]byte{[]byte("hello world")},
		[]time.Time{time.Unix(100, 0)})
	// Chop the file at several points; every prefix must fail cleanly
	// (ErrTruncated or ErrNgBadMagic), never panic or succeed.
	for cut := 1; cut < len(raw); cut += 7 {
		r, err := NewNgReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue // truncated inside the SHB
		}
		for {
			_, _, err = r.ReadPacket()
			if err != nil {
				break
			}
		}
		if err == io.EOF && cut < len(raw) {
			// EOF is acceptable only at block boundaries.
			if (len(raw)-cut)%4 != 0 {
				t.Errorf("cut=%d: clean EOF inside a block", cut)
			}
		}
	}
}

func TestNgBadTrailingLength(t *testing.T) {
	raw := writeNgCapture(t, [][]byte{[]byte("abcd")}, []time.Time{time.Unix(1, 0)})
	// Corrupt the trailing length of the last block (last 4 bytes).
	raw[len(raw)-1] ^= 0xff
	r, err := NewNgReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.ReadPacket()
	if err != ErrNgBadBlockLen {
		t.Errorf("err = %v, want ErrNgBadBlockLen", err)
	}
}

func TestNgUnknownInterface(t *testing.T) {
	raw := writeNgCapture(t, [][]byte{[]byte("abcd")}, []time.Time{time.Unix(1, 0)})
	// The EPB is the last block: find it and bump its interface ID.
	// Block layout from the end: [... EPB ...]; EPB body starts 8 bytes
	// after its header. Easier: scan for the EPB type code.
	for i := 0; i+4 <= len(raw); i += 4 {
		if binary.LittleEndian.Uint32(raw[i:i+4]) == blockEPB {
			binary.LittleEndian.PutUint32(raw[i+8:i+12], 5) // interface 5
			break
		}
	}
	r, err := NewNgReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); err != ErrNgNoInterface {
		t.Errorf("err = %v, want ErrNgNoInterface", err)
	}
}

func TestNgSkipsUnknownBlocks(t *testing.T) {
	base := time.Unix(50, 0)
	raw := writeNgCapture(t, [][]byte{[]byte("payload")}, []time.Time{base})

	// Splice an unknown block (type 0x0bad) between IDB and EPB. Find the
	// EPB offset first.
	epbOff := -1
	for i := 0; i+4 <= len(raw); i += 4 {
		if binary.LittleEndian.Uint32(raw[i:i+4]) == blockEPB {
			epbOff = i
			break
		}
	}
	if epbOff < 0 {
		t.Fatal("no EPB found")
	}
	unknown := make([]byte, 16)
	binary.LittleEndian.PutUint32(unknown[0:4], 0x0bad)
	binary.LittleEndian.PutUint32(unknown[4:8], 16)
	binary.LittleEndian.PutUint32(unknown[12:16], 16)
	spliced := append(append(append([]byte{}, raw[:epbOff]...), unknown...), raw[epbOff:]...)

	r, err := NewNgReader(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	ci, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" || !ci.Timestamp.Equal(base) {
		t.Errorf("got %q @ %v", data, ci.Timestamp)
	}
}

func TestNgBigEndianSection(t *testing.T) {
	// Hand-build a big-endian section: SHB + IDB (µs resolution, no
	// options) + one EPB.
	var buf bytes.Buffer
	be := binary.BigEndian
	writeBlock := func(typ uint32, body []byte) {
		total := uint32(12 + len(body))
		var b [8]byte
		be.PutUint32(b[0:4], typ)
		be.PutUint32(b[4:8], total)
		buf.Write(b[:])
		buf.Write(body)
		var tail [4]byte
		be.PutUint32(tail[:], total)
		buf.Write(tail[:])
	}
	shb := make([]byte, 16)
	be.PutUint32(shb[0:4], byteOrderMagic)
	be.PutUint16(shb[4:6], 1)
	be.PutUint64(shb[8:16], ^uint64(0))
	writeBlock(blockSHB, shb)

	idb := make([]byte, 8)
	be.PutUint16(idb[0:2], uint16(LinkTypeEthernet))
	be.PutUint32(idb[4:8], 65535)
	writeBlock(blockIDB, idb)

	payload := []byte("bigend")
	ts := uint64(1018515304) * 1_000_000 // seconds → µs ticks
	epb := make([]byte, 20+8)            // 6 bytes payload + 2 pad
	be.PutUint32(epb[0:4], 0)
	be.PutUint32(epb[4:8], uint32(ts>>32))
	be.PutUint32(epb[8:12], uint32(ts))
	be.PutUint32(epb[12:16], uint32(len(payload)))
	be.PutUint32(epb[16:20], uint32(len(payload)))
	copy(epb[20:], payload)
	writeBlock(blockEPB, epb)

	r, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ci, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Errorf("data = %q", data)
	}
	want := time.Unix(1018515304, 0).UTC()
	if !ci.Timestamp.Equal(want) {
		t.Errorf("ts = %v, want %v", ci.Timestamp, want)
	}
}

func TestNgPowerOfTwoResolution(t *testing.T) {
	// IDB with if_tsresol = 0x83 (2^-8 ticks): 256 ticks per second.
	var buf bytes.Buffer
	le := binary.LittleEndian
	writeBlock := func(typ uint32, body []byte) {
		total := uint32(12 + len(body))
		var b [8]byte
		le.PutUint32(b[0:4], typ)
		le.PutUint32(b[4:8], total)
		buf.Write(b[:])
		buf.Write(body)
		var tail [4]byte
		le.PutUint32(tail[:], total)
		buf.Write(tail[:])
	}
	shb := make([]byte, 16)
	le.PutUint32(shb[0:4], byteOrderMagic)
	le.PutUint16(shb[4:6], 1)
	writeBlock(blockSHB, shb)

	idb := make([]byte, 8+8+4)
	le.PutUint16(idb[0:2], uint16(LinkTypeEthernet))
	le.PutUint32(idb[4:8], 65535)
	le.PutUint16(idb[8:10], optIfTsResol)
	le.PutUint16(idb[10:12], 1)
	idb[12] = 0x88 // 2^-8
	writeBlock(blockIDB, idb)

	payload := []byte("pow2")
	ticks := uint64(10*256 + 128) // 10.5 s
	epb := make([]byte, 20+4)
	le.PutUint32(epb[4:8], uint32(ticks>>32))
	le.PutUint32(epb[8:12], uint32(ticks))
	le.PutUint32(epb[12:16], uint32(len(payload)))
	le.PutUint32(epb[16:20], uint32(len(payload)))
	copy(epb[20:], payload)
	writeBlock(blockEPB, epb)

	r, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ci, _, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(10, 500_000_000).UTC()
	if !ci.Timestamp.Equal(want) {
		t.Errorf("ts = %v, want %v", ci.Timestamp, want)
	}
}

func TestNgMultiSection(t *testing.T) {
	// Two concatenated single-packet captures must both be readable.
	a := writeNgCapture(t, [][]byte{[]byte("sec1")}, []time.Time{time.Unix(1, 0)})
	b := writeNgCapture(t, [][]byte{[]byte("sec2")}, []time.Time{time.Unix(2, 0)})
	r, err := NewNgReader(bytes.NewReader(append(a, b...)))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sec1", "sec2"} {
		_, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if string(data) != want {
			t.Errorf("data = %q, want %q", data, want)
		}
	}
	if _, _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestReadersNeverPanicOnRandomBytes(t *testing.T) {
	// Both file-format readers must reject arbitrary input with errors,
	// never panic — they are fed files straight from disk.
	f := func(data []byte) bool {
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			for i := 0; i < 10; i++ {
				if _, _, err := r.ReadPacket(); err != nil {
					break
				}
			}
		}
		if r, err := NewNgReader(bytes.NewReader(data)); err == nil {
			for i := 0; i < 10; i++ {
				if _, _, err := r.ReadPacket(); err != nil {
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
