package netem

import (
	"testing"
	"testing/quick"
	"time"

	"cstrace/internal/trace"
)

// periodicFlow builds a constant-rate flow of n packets of the given app
// payload, dir, spaced by gap.
func periodicFlow(n int, app uint16, dir trace.Direction, gap time.Duration) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{T: time.Duration(i) * gap, Dir: dir, Client: 1, App: app}
	}
	return recs
}

func TestConservation(t *testing.T) {
	var got trace.Collect
	l, err := NewLink(45e3, 60*time.Millisecond, 0, 4096, 1, &got)
	if err != nil {
		t.Fatal(err)
	}
	// Overload: 50 packets back-to-back of ~188 wire bytes into a 4 KB
	// buffer.
	for _, r := range periodicFlow(50, 130, trace.Out, 0) {
		l.Handle(r)
	}
	st := l.Stats()
	if st.Offered != 50 {
		t.Fatalf("offered = %d", st.Offered)
	}
	if st.Delivered+st.Dropped != st.Offered {
		t.Errorf("delivered %d + dropped %d != offered %d", st.Delivered, st.Dropped, st.Offered)
	}
	if int64(len(got.Records)) != st.Delivered {
		t.Errorf("forwarded %d, stats say %d", len(got.Records), st.Delivered)
	}
	if st.Dropped == 0 {
		t.Error("expected drop-tail losses on instantaneous burst")
	}
	// Buffer fits floor(4096/188) = 21 packets.
	if st.Delivered != 21 {
		t.Errorf("delivered = %d, want 21", st.Delivered)
	}
}

func TestRateLimiting(t *testing.T) {
	var got trace.Collect
	rate := 45e3
	l, err := NewLink(rate, 0, 0, 1<<20, 1, &got)
	if err != nil {
		t.Fatal(err)
	}
	// 10 packets at t=0; the last must depart at ~(totalBits/rate).
	n, app := 10, uint16(130)
	for _, r := range periodicFlow(n, app, trace.Out, 0) {
		l.Handle(r)
	}
	wire := int64(130 + 58)
	want := time.Duration(float64(int64(n)*wire*8) / rate * float64(time.Second))
	lastT := got.Records[len(got.Records)-1].T
	if diff := lastT - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("last departure %v, want ~%v", lastT, want)
	}
	if u := l.Stats().Utilization(); u < 0.99 || u > 1.01 {
		t.Errorf("utilization = %.3f, want ~1", u)
	}
}

func TestDelayFloorAndOrder(t *testing.T) {
	var got trace.Collect
	prop := 60 * time.Millisecond
	l, err := NewLink(45e3, prop, 8*time.Millisecond, 1<<20, 7, &got)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range periodicFlow(200, 40, trace.In, 10*time.Millisecond) {
		l.Handle(r)
	}
	last := time.Duration(-1)
	for i, r := range got.Records {
		if r.T < last {
			t.Fatalf("record %d overtakes: %v < %v", i, r.T, last)
		}
		last = r.T
		in := time.Duration(i) * 10 * time.Millisecond
		if r.T-in < prop {
			t.Fatalf("record %d delay %v below propagation %v", i, r.T-in, prop)
		}
	}
	if mean := l.Stats().Delay.Mean(); mean < prop.Seconds() {
		t.Errorf("mean delay %.4f below propagation floor", mean)
	}
}

func TestQueueDrainsBetweenBursts(t *testing.T) {
	var got trace.Collect
	l, err := NewLink(45e3, 0, 0, 2048, 1, &got)
	if err != nil {
		t.Fatal(err)
	}
	// Two bursts of 10 x 188 B (1880 B, fits the 2 KB buffer) separated
	// by a second of idle: the second burst must not see a full queue.
	burst := periodicFlow(10, 130, trace.Out, 0)
	for _, r := range burst {
		l.Handle(r)
	}
	for _, r := range burst {
		r.T += time.Second
		l.Handle(r)
	}
	if st := l.Stats(); st.Dropped != 0 {
		t.Errorf("dropped %d packets; queue should have drained", st.Dropped)
	}
}

func TestModemSaturation(t *testing.T) {
	// The paper's core claim, seen from the last mile. An ordinary
	// client's downstream (~25 kbs of the ~40 kbs total budget) fits a
	// modem; an "l337" client's cranked-up rate (~100 kbs) cannot.
	run := func(app uint16, gap time.Duration) *LinkStats {
		var sink trace.Collect
		m, err := New(Modem56k(), 1, &sink)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range periodicFlow(2000, app, trace.Out, gap) {
			m.Handle(r)
		}
		return m.Down()
	}

	// Ordinary: 130 B app (188 wire) every 60 ms = 25 kbs.
	ordinary := run(130, 60*time.Millisecond)
	if lr := ordinary.LossRate(); lr != 0 {
		t.Errorf("ordinary flow loss %.3f, want 0", lr)
	}
	if d := ordinary.Delay.Mean(); d > 0.150 {
		t.Errorf("ordinary flow mean delay %.3fs, want playable (<150 ms)", d)
	}

	// Elite: 250 B app (308 wire) every 20 ms = 123 kbs into 45 kbs.
	elite := run(250, 20*time.Millisecond)
	if lr := elite.LossRate(); lr < 0.3 {
		t.Errorf("elite flow loss %.3f, want heavy (>0.3)", lr)
	}
	// The link itself saturates: goodput pegs at the line rate.
	if g := float64(elite.Goodput()); g < 40e3 || g > 46e3 {
		t.Errorf("elite goodput %.0f, want pegged at ~45k line rate", g)
	}
}

func TestLastMileRouting(t *testing.T) {
	var sink trace.Collect
	m, err := New(DSL(), 3, &sink)
	if err != nil {
		t.Fatal(err)
	}
	m.Handle(trace.Record{T: 0, Dir: trace.Out, App: 130})
	m.Handle(trace.Record{T: 0, Dir: trace.In, App: 40})
	if m.Down().Offered != 1 || m.Up().Offered != 1 {
		t.Errorf("routing wrong: down %d up %d", m.Down().Offered, m.Up().Offered)
	}
	if len(sink.Records) != 2 {
		t.Fatalf("forwarded %d", len(sink.Records))
	}
	for _, r := range sink.Records {
		if r.T <= 0 {
			t.Error("forwarded record not restamped")
		}
	}
}

func TestProfilesSane(t *testing.T) {
	prev := 0.0
	for _, p := range Profiles() {
		if p.DownBps <= 0 || p.UpBps <= 0 || p.BufBytes <= 0 {
			t.Errorf("%s: non-positive parameters", p.Name)
		}
		if p.UpBps > p.DownBps {
			t.Errorf("%s: uplink faster than downlink", p.Name)
		}
		if p.DownBps < prev {
			t.Errorf("%s: profiles not ordered slowest-first", p.Name)
		}
		prev = p.DownBps
		if _, err := New(p, 1, trace.HandlerFunc(func(trace.Record) {})); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestNewLinkValidation(t *testing.T) {
	sink := trace.HandlerFunc(func(trace.Record) {})
	if _, err := NewLink(0, 0, 0, 1, 1, sink); err == nil {
		t.Error("accepted zero rate")
	}
	if _, err := NewLink(1e6, 0, 0, 0, 1, sink); err == nil {
		t.Error("accepted zero buffer")
	}
	if _, err := NewLink(1e6, 0, 0, 1024, 1, nil); err == nil {
		t.Error("accepted nil handler")
	}
}

func TestLinkProperties(t *testing.T) {
	// For arbitrary small workloads: conservation holds, output is
	// monotone, and every delivered packet is delayed by at least the
	// serialization time of its own bytes.
	f := func(seed uint64, sizes []uint8, gapsMs []uint8) bool {
		n := len(sizes)
		if len(gapsMs) < n {
			n = len(gapsMs)
		}
		if n == 0 {
			return true
		}
		var got trace.Collect
		rate := 64e3
		l, err := NewLink(rate, 10*time.Millisecond, time.Millisecond, 8192, seed, &got)
		if err != nil {
			return false
		}
		var t0 time.Duration
		for i := 0; i < n; i++ {
			t0 += time.Duration(gapsMs[i]) * time.Millisecond
			l.Handle(trace.Record{T: t0, App: uint16(sizes[i])})
		}
		st := l.Stats()
		if st.Delivered+st.Dropped != st.Offered || st.Offered != int64(n) {
			return false
		}
		last := time.Duration(-1)
		for _, r := range got.Records {
			if r.T < last {
				return false
			}
			last = r.T
		}
		return int64(len(got.Records)) == st.Delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
