package netem

import (
	"testing"
	"time"

	"cstrace/internal/trace"
)

// mixedFlow builds a time-ordered two-direction stream dense enough to
// exercise queue drops on the modem profile.
func mixedFlow(n int) []trace.Record {
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, trace.Record{
			T:      time.Duration(i) * 12 * time.Millisecond,
			Dir:    trace.Direction(i % 2),
			Kind:   trace.KindGame,
			Client: 1,
			App:    uint16(60 + i%200),
		})
	}
	return recs
}

// TestLastMileBatchMatchesPerRecord: the batch path must forward exactly
// the records, in the order, with the statistics of the per-record path.
func TestLastMileBatchMatchesPerRecord(t *testing.T) {
	recs := mixedFlow(4000)

	var one trace.Collect
	lm1, err := New(Modem56k(), 7, &one)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		lm1.Handle(r)
	}

	var batch trace.Collect
	lm2, err := New(Modem56k(), 7, &batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(recs); i += 256 {
		end := min(i+256, len(recs))
		lm2.HandleBatch(recs[i:end])
	}

	if len(one.Records) != len(batch.Records) {
		t.Fatalf("forwarded %d per-record vs %d batched", len(one.Records), len(batch.Records))
	}
	for i := range one.Records {
		if one.Records[i] != batch.Records[i] {
			t.Fatalf("record %d diverges: %+v vs %+v", i, one.Records[i], batch.Records[i])
		}
	}
	if *lm1.Down() != *lm2.Down() || *lm1.Up() != *lm2.Up() {
		t.Error("link statistics diverge between per-record and batch paths")
	}
	if lm1.Down().Dropped == 0 {
		t.Error("test flow never dropped; queue path unexercised")
	}
}
