// Package netem models the narrowest last-mile links the paper's thesis
// revolves around: "in order to maximize the interactivity of the game
// itself and to provide relatively uniform experiences between players
// playing over different network speeds, on-line games typically fix their
// usage requirements in such a way as to saturate the network link of their
// lowest speed players."
//
// A Link is a one-direction store-and-forward bottleneck: packets serialize
// at the link rate, wait in a finite drop-tail FIFO, then propagate after a
// fixed delay plus optional jitter. A LastMile pairs a downlink (server →
// client) and an uplink (client → server) and routes records by direction,
// so a single client's slice of the server trace can be replayed through
// its access link to measure the delay and loss that client would see.
//
// The presets are the access technologies of the paper's era; Modem56k's
// effective 40-50 kbs payload rate is exactly the budget the game's ~40 kbs
// per-player flow saturates.
package netem

import (
	"errors"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/stats"
	"cstrace/internal/trace"
	"cstrace/internal/units"
)

// Profile describes a bidirectional access link.
type Profile struct {
	Name     string
	DownBps  float64 // server → client rate, bits/sec
	UpBps    float64 // client → server rate, bits/sec
	Prop     time.Duration
	JitterSD time.Duration // lognormal-ish spread added to propagation
	BufBytes int           // queue capacity per direction, bytes
}

// Modem56k is a V.90 modem: nominal 56 kbs down, 33.6 kbs up, with the
// 40-50 kbs effective downstream the paper cites, long serialization
// delays and a small modem buffer.
func Modem56k() Profile {
	return Profile{
		Name:    "modem56k",
		DownBps: 45e3, UpBps: 31.2e3,
		Prop: 60 * time.Millisecond, JitterSD: 8 * time.Millisecond,
		BufBytes: 4096,
	}
}

// ISDN is a 64 kbs basic-rate channel.
func ISDN() Profile {
	return Profile{
		Name:    "isdn64k",
		DownBps: 64e3, UpBps: 64e3,
		Prop: 20 * time.Millisecond, JitterSD: 2 * time.Millisecond,
		BufBytes: 8192,
	}
}

// DSL is early ADSL: 640 kbs down, 128 kbs up.
func DSL() Profile {
	return Profile{
		Name:    "dsl640k",
		DownBps: 640e3, UpBps: 128e3,
		Prop: 15 * time.Millisecond, JitterSD: 2 * time.Millisecond,
		BufBytes: 16384,
	}
}

// Cable is a shared cable plant: 1.5 Mbs down, 256 kbs up, jittery.
func Cable() Profile {
	return Profile{
		Name:    "cable1.5M",
		DownBps: 1.5e6, UpBps: 256e3,
		Prop: 12 * time.Millisecond, JitterSD: 6 * time.Millisecond,
		BufBytes: 32768,
	}
}

// LAN10M is a campus/office connection that is never the bottleneck.
func LAN10M() Profile {
	return Profile{
		Name:    "lan10M",
		DownBps: 10e6, UpBps: 10e6,
		Prop: 2 * time.Millisecond, JitterSD: 200 * time.Microsecond,
		BufBytes: 65536,
	}
}

// Profiles returns all presets, slowest first.
func Profiles() []Profile {
	return []Profile{Modem56k(), ISDN(), DSL(), Cable(), LAN10M()}
}

// LinkStats summarizes one direction of a link.
type LinkStats struct {
	Offered   int64
	Delivered int64
	Dropped   int64
	WireBytes int64 // delivered bytes on the wire

	// Delay is queue wait + serialization + propagation + jitter, in
	// seconds, over delivered packets.
	Delay stats.Summary

	// Busy is the total serialization time, for utilization.
	Busy time.Duration
	// Span is the time of the last departure.
	Span time.Duration
}

// LossRate returns the drop fraction of offered packets.
func (s *LinkStats) LossRate() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(s.Offered)
}

// Utilization returns the fraction of the span the transmitter was busy.
func (s *LinkStats) Utilization() float64 {
	if s.Span <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Span)
}

// Goodput returns delivered wire bits/sec over the span.
func (s *LinkStats) Goodput() units.BitsPerSecond {
	if s.Span <= 0 {
		return 0
	}
	return units.Rate(units.Bytes(s.WireBytes), s.Span.Seconds())
}

// Link is one direction of an access link. Feed it records in time order;
// survivors are forwarded, restamped with their arrival time at the far
// end. Output order is monotone (jitter is clamped so packets do not
// overtake each other, as on a real serial link).
type Link struct {
	rate     float64 // bits/sec
	prop     time.Duration
	jitterSD time.Duration
	bufBytes int
	next     trace.Handler
	rng      *dist.RNG

	queueBytes int64         // bytes awaiting or in serialization
	freeAt     time.Duration // when the transmitter frees up
	lastOut    time.Duration // last forwarded timestamp (order clamp)
	lastT      time.Duration // last arrival seen (to drain the queue)
	scratch    trace.Block   // survivors of the current batch
	stats      LinkStats
}

// NewLink builds a one-direction link. rate is the line rate in bits/sec.
func NewLink(rate float64, prop, jitterSD time.Duration, bufBytes int, seed uint64, next trace.Handler) (*Link, error) {
	if rate <= 0 {
		return nil, errors.New("netem: rate must be positive")
	}
	if bufBytes <= 0 {
		return nil, errors.New("netem: buffer must be positive")
	}
	if next == nil {
		return nil, errors.New("netem: nil next handler")
	}
	return &Link{
		rate:     rate,
		prop:     prop,
		jitterSD: jitterSD,
		bufBytes: bufBytes,
		next:     next,
		rng:      dist.NewRNG(seed),
	}, nil
}

// Stats returns the accumulated statistics.
func (l *Link) Stats() *LinkStats { return &l.stats }

// process runs one record through the link, returning the restamped record
// or ok=false when the queue dropped it.
func (l *Link) process(r trace.Record) (fwd trace.Record, ok bool) {
	l.stats.Offered++
	l.drainTo(r.T)
	l.lastT = r.T

	wire := int64(r.Wire())
	if l.queueBytes+wire > int64(l.bufBytes) {
		l.stats.Dropped++
		return r, false
	}
	l.queueBytes += wire

	// Serialization starts when the transmitter frees up.
	start := l.freeAt
	if r.T > start {
		start = r.T
	}
	tx := time.Duration(float64(wire*8) / l.rate * float64(time.Second))
	done := start + tx
	l.freeAt = done
	l.stats.Busy += tx

	jitter := time.Duration(0)
	if l.jitterSD > 0 {
		j := l.rng.NormFloat64() * float64(l.jitterSD)
		if j < 0 {
			j = -j
		}
		jitter = time.Duration(j)
	}
	out := done + l.prop + jitter
	if out < l.lastOut {
		out = l.lastOut // no overtaking on a serial link
	}
	l.lastOut = out

	l.stats.Delivered++
	l.stats.WireBytes += wire
	l.stats.Delay.Add((out - r.T).Seconds())
	if out > l.stats.Span {
		l.stats.Span = out
	}
	fwd = r
	fwd.T = out
	return fwd, true
}

// Handle implements trace.Handler.
func (l *Link) Handle(r trace.Record) {
	if fwd, ok := l.process(r); ok {
		l.next.Handle(fwd)
	}
}

// HandleBatch implements trace.BatchHandler: survivors of the whole block
// forward downstream in one call.
func (l *Link) HandleBatch(rs []trace.Record) {
	l.scratch = l.scratch[:0]
	for _, r := range rs {
		if fwd, ok := l.process(r); ok {
			l.scratch = append(l.scratch, fwd)
		}
	}
	trace.Dispatch(l.next, l.scratch)
}

// drainTo releases queue occupancy for packets fully serialized by t. The
// queue holds bytes from arrival until serialization completes, so
// occupancy is the backlog the transmitter still owes at time t.
func (l *Link) drainTo(t time.Duration) {
	if t <= l.lastT || l.queueBytes == 0 {
		return
	}
	if t >= l.freeAt {
		l.queueBytes = 0
		return
	}
	// Backlog remaining at t, in bytes.
	remaining := int64(float64(l.freeAt-t) / float64(time.Second) * l.rate / 8)
	if remaining < l.queueBytes {
		l.queueBytes = remaining
	}
}

// LastMile pairs the two directions of one client's access link and routes
// records by direction: Out records (server → client) traverse the
// downlink, In records the uplink. Timestamps on In records are taken as
// client transmission times, so the uplink restamps them with server-side
// arrival times just as the downlink restamps Out records with client-side
// arrival times.
type LastMile struct {
	down, up *Link
	scratch  trace.Block
}

// New builds a LastMile from a profile. Both directions forward to next.
func New(p Profile, seed uint64, next trace.Handler) (*LastMile, error) {
	down, err := NewLink(p.DownBps, p.Prop, p.JitterSD, p.BufBytes, seed, next)
	if err != nil {
		return nil, err
	}
	up, err := NewLink(p.UpBps, p.Prop, p.JitterSD, p.BufBytes, seed+1, next)
	if err != nil {
		return nil, err
	}
	return &LastMile{down: down, up: up}, nil
}

// Handle implements trace.Handler.
func (m *LastMile) Handle(r trace.Record) {
	if r.Dir == trace.Out {
		m.down.Handle(r)
	} else {
		m.up.Handle(r)
	}
}

// HandleBatch implements trace.BatchHandler. Records route per direction in
// arrival order and the survivors of both links forward as one block in
// that same order, so the downstream sees exactly the per-record stream.
func (m *LastMile) HandleBatch(rs []trace.Record) {
	m.scratch = m.scratch[:0]
	for _, r := range rs {
		l := m.up
		if r.Dir == trace.Out {
			l = m.down
		}
		if fwd, ok := l.process(r); ok {
			m.scratch = append(m.scratch, fwd)
		}
	}
	trace.Dispatch(m.down.next, m.scratch)
}

// Down returns downlink statistics (server → client).
func (m *LastMile) Down() *LinkStats { return m.down.Stats() }

// Up returns uplink statistics (client → server).
func (m *LastMile) Up() *LinkStats { return m.up.Stats() }
