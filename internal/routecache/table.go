// Package routecache explores the paper's §IV-B proposal: since game
// traffic is small, periodic packets over a stable set of destinations,
// "preferential route caching strategies based on packet size or packet
// frequency may provide significant improvements in packet throughput".
//
// It provides a longest-prefix-match FIB (binary trie, with per-lookup cost
// accounting standing in for the route-lookup work that §IV-A shows becomes
// the bottleneck under small-packet load), a set of route-cache replacement
// and admission policies (LRU, LFU, size-preferential, frequency-
// preferential), and synthetic game/web workloads to compare them on.
package routecache

import (
	"errors"
	"net/netip"
)

// Table is a longest-prefix-match IPv4 routing table over a binary trie.
// Lookup cost is the number of trie nodes visited — the model for the
// per-packet route-lookup work of a software router.
type Table struct {
	root     *node
	prefixes int
}

type node struct {
	child    [2]*node
	hasRoute bool
	nexthop  uint32
}

// Insert adds or replaces a route. Only IPv4 prefixes are accepted.
func (t *Table) Insert(prefix netip.Prefix, nexthop uint32) error {
	if !prefix.Addr().Is4() {
		return errors.New("routecache: Insert: IPv4 prefixes only")
	}
	if t.root == nil {
		t.root = &node{}
	}
	addr := ipv4Bits(prefix.Addr())
	n := t.root
	for i := 0; i < prefix.Bits(); i++ {
		b := addr >> (31 - i) & 1
		if n.child[b] == nil {
			n.child[b] = &node{}
		}
		n = n.child[b]
	}
	if !n.hasRoute {
		t.prefixes++
	}
	n.hasRoute = true
	n.nexthop = nexthop
	return nil
}

// Len returns the number of installed prefixes.
func (t *Table) Len() int { return t.prefixes }

// Lookup walks the trie for the longest matching prefix. It returns the
// next hop, whether any route matched, and the number of nodes visited.
func (t *Table) Lookup(addr netip.Addr) (nexthop uint32, ok bool, cost int) {
	if t.root == nil || !addr.Is4() {
		return 0, false, 1
	}
	bits := ipv4Bits(addr)
	n := t.root
	cost = 1
	for i := 0; i < 32 && n != nil; i++ {
		if n.hasRoute {
			nexthop, ok = n.nexthop, true
		}
		b := bits >> (31 - i) & 1
		if n.child[b] == nil {
			break
		}
		n = n.child[b]
		cost++
	}
	if n != nil && n.hasRoute {
		nexthop, ok = n.nexthop, true
	}
	return nexthop, ok, cost
}

func ipv4Bits(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
