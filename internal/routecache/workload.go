package routecache

import (
	"net/netip"

	"cstrace/internal/dist"
)

// Packet is one routed packet: a destination and a wire size.
type Packet struct {
	Dst  netip.Addr
	Size int
}

// BuildFIB installs a synthetic Internet-like FIB: nPrefixes prefixes with
// lengths drawn from the classic /8-/24 distribution (mass concentrated at
// /16-/24, as in backbone tables).
func BuildFIB(nPrefixes int, seed uint64) *Table {
	r := dist.NewRNG(seed)
	t := &Table{}
	for i := 0; i < nPrefixes; i++ {
		bits := 8 + r.Intn(17) // 8..24
		addr := netip.AddrFrom4([4]byte{
			byte(1 + r.Intn(223)), byte(r.Uint64()), byte(r.Uint64()), byte(r.Uint64()),
		})
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		_ = t.Insert(p, uint32(i%64)) // 64 next hops
	}
	// A default route so every lookup resolves.
	_ = t.Insert(netip.MustParsePrefix("0.0.0.0/0"), 63)
	return t
}

// GameWorkload produces the router-adjacent view of the paper's server: a
// stable set of nClients destinations (one per connected player, with slow
// churn) receiving small packets at high rate.
func GameWorkload(n, nClients int, churn float64, seed uint64) []Packet {
	r := dist.NewRNG(seed)
	size := dist.Truncated{S: dist.Normal{Mu: 130 + 58, Sigma: 46}, Low: 70, High: 478}
	clients := make([]netip.Addr, nClients)
	nextID := uint32(1)
	for i := range clients {
		clients[i] = clientAddr(nextID)
		nextID++
	}
	out := make([]Packet, n)
	for i := range out {
		if r.Bool(churn) {
			// A player leaves and another joins: one destination changes.
			clients[r.Intn(nClients)] = clientAddr(nextID)
			nextID++
		}
		out[i] = Packet{
			Dst:  clients[r.Intn(nClients)],
			Size: int(size.Sample(r)),
		}
	}
	return out
}

// WebWorkload produces web/peer-to-peer-like cross traffic: flows to a
// heavy-tailed population of destinations, with Pareto flow lengths and
// large data packets (the >400 B means the paper cites for exchange-point
// traffic).
func WebWorkload(n, nDests int, seed uint64) []Packet {
	r := dist.NewRNG(seed)
	zipf, err := dist.NewZipf(nDests, 1.1)
	if err != nil {
		panic(err) // nDests is a caller bug
	}
	flowLen := dist.Pareto{Xm: 2, Alpha: 1.3}
	size := dist.Truncated{S: dist.Normal{Mu: 700, Sigma: 400}, Low: 98, High: 1558}

	out := make([]Packet, 0, n)
	for len(out) < n {
		dst := webAddr(uint32(zipf.Rank(r)))
		l := int(flowLen.Sample(r))
		if l > 64 {
			l = 64
		}
		for i := 0; i < l && len(out) < n; i++ {
			out = append(out, Packet{Dst: dst, Size: int(size.Sample(r))})
		}
	}
	return out
}

// Mix interleaves two workloads with the given fraction of packets drawn
// from a (deterministically, by a seeded coin).
func Mix(a, b []Packet, fracA float64, seed uint64) []Packet {
	r := dist.NewRNG(seed)
	out := make([]Packet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		takeA := j >= len(b) || (i < len(a) && r.Bool(fracA))
		if takeA {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// Run replays a workload through a cache and returns its metrics.
func Run(c *Cache, w []Packet) Metrics {
	for _, p := range w {
		c.Lookup(p.Dst, p.Size)
	}
	return c.Metrics()
}

func clientAddr(id uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{172, byte(16 + id>>16&0x0f), byte(id >> 8), byte(id)})
}

func webAddr(id uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(4 + id>>20&0x7f), byte(id >> 12), byte(id >> 4), byte(id << 4)})
}
