package routecache

import (
	"container/list"
	"errors"
	"net/netip"
)

// Policy selects the cache replacement/admission strategy.
type Policy uint8

const (
	// PolicyNone disables caching: every packet pays the full lookup.
	PolicyNone Policy = iota
	// PolicyLRU is plain least-recently-used replacement.
	PolicyLRU
	// PolicyLFU evicts the least-frequently-used entry.
	PolicyLFU
	// PolicySizePref is LRU with size-based admission: only packets no
	// larger than SizeThreshold install cache entries, so small-packet
	// (game) routes are never evicted by bulky transfer traffic. Larger
	// packets still *use* the cache when their route happens to be there.
	PolicySizePref
	// PolicyFreqPref is LRU with frequency-based admission: a route is
	// installed only on its second miss within the ghost window, keeping
	// one-shot destinations (web tails) from churning the cache.
	PolicyFreqPref
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyLRU:
		return "lru"
	case PolicyLFU:
		return "lfu"
	case PolicySizePref:
		return "size-pref"
	case PolicyFreqPref:
		return "freq-pref"
	}
	return "unknown"
}

// CacheConfig parameterizes a route cache.
type CacheConfig struct {
	Policy   Policy
	Capacity int
	// SizeThreshold is the admission bound for PolicySizePref, in wire
	// bytes (the paper's game packets sit far below typical data-segment
	// sizes; 200 B separates them cleanly).
	SizeThreshold int
	// GhostCapacity bounds the miss-history filter for PolicyFreqPref.
	GhostCapacity int
	// HitCost and MissExtra model per-packet work: a hit costs HitCost; a
	// miss costs the full table lookup plus MissExtra for the insertion.
	HitCost   int
	MissExtra int
}

// DefaultCacheConfig returns a reasonable starting point for the given
// policy and capacity.
func DefaultCacheConfig(p Policy, capacity int) CacheConfig {
	return CacheConfig{
		Policy:        p,
		Capacity:      capacity,
		SizeThreshold: 200,
		GhostCapacity: 4 * capacity,
		HitCost:       1,
		MissExtra:     2,
	}
}

// Metrics accumulates cache performance.
type Metrics struct {
	Packets   int64
	Hits      int64
	Misses    int64
	Evictions int64
	Cost      int64 // total lookup work units
}

// HitRatio returns hits/packets.
func (m Metrics) HitRatio() float64 {
	if m.Packets == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Packets)
}

// MeanCost returns average work units per packet.
func (m Metrics) MeanCost() float64 {
	if m.Packets == 0 {
		return 0
	}
	return float64(m.Cost) / float64(m.Packets)
}

type entry struct {
	addr    netip.Addr
	nexthop uint32
	freq    int64
	elem    *list.Element
}

// Cache is a destination-address route cache in front of a Table.
type Cache struct {
	cfg   CacheConfig
	table *Table

	entries map[netip.Addr]*entry
	order   *list.List // LRU order, front = most recent

	ghost      map[netip.Addr]bool
	ghostOrder *list.List

	metrics Metrics
}

// NewCache creates a cache over the given table.
func NewCache(cfg CacheConfig, table *Table) (*Cache, error) {
	if table == nil {
		return nil, errors.New("routecache: NewCache: nil table")
	}
	if cfg.Policy != PolicyNone && cfg.Capacity <= 0 {
		return nil, errors.New("routecache: NewCache: capacity must be positive")
	}
	if cfg.HitCost <= 0 {
		cfg.HitCost = 1
	}
	if cfg.Policy == PolicyFreqPref && cfg.GhostCapacity <= 0 {
		cfg.GhostCapacity = 4 * cfg.Capacity
	}
	return &Cache{
		cfg:        cfg,
		table:      table,
		entries:    make(map[netip.Addr]*entry),
		order:      list.New(),
		ghost:      make(map[netip.Addr]bool),
		ghostOrder: list.New(),
	}, nil
}

// Lookup routes one packet of the given wire size to dst, returning the next
// hop and whether it was served from the cache.
func (c *Cache) Lookup(dst netip.Addr, size int) (nexthop uint32, hit bool) {
	c.metrics.Packets++
	if c.cfg.Policy != PolicyNone {
		if e, ok := c.entries[dst]; ok {
			c.metrics.Hits++
			c.metrics.Cost += int64(c.cfg.HitCost)
			e.freq++
			if c.cfg.Policy != PolicyLFU {
				c.order.MoveToFront(e.elem)
			}
			return e.nexthop, true
		}
	}

	nexthop, _, cost := c.table.Lookup(dst)
	c.metrics.Misses++
	c.metrics.Cost += int64(cost)

	if c.cfg.Policy == PolicyNone {
		return nexthop, false
	}
	if c.admit(dst, size) {
		c.metrics.Cost += int64(c.cfg.MissExtra)
		c.install(dst, nexthop)
	}
	return nexthop, false
}

// admit applies the policy's admission filter.
func (c *Cache) admit(dst netip.Addr, size int) bool {
	switch c.cfg.Policy {
	case PolicySizePref:
		return size <= c.cfg.SizeThreshold
	case PolicyFreqPref:
		if c.ghost[dst] {
			delete(c.ghost, dst)
			return true
		}
		c.ghost[dst] = true
		c.ghostOrder.PushFront(dst)
		for len(c.ghost) > c.cfg.GhostCapacity {
			back := c.ghostOrder.Back()
			c.ghostOrder.Remove(back)
			delete(c.ghost, back.Value.(netip.Addr))
		}
		return false
	default:
		return true
	}
}

func (c *Cache) install(dst netip.Addr, nexthop uint32) {
	for len(c.entries) >= c.cfg.Capacity {
		c.evict()
	}
	e := &entry{addr: dst, nexthop: nexthop, freq: 1}
	e.elem = c.order.PushFront(e)
	c.entries[dst] = e
}

func (c *Cache) evict() {
	var victim *entry
	if c.cfg.Policy == PolicyLFU {
		for _, e := range c.entries {
			if victim == nil || e.freq < victim.freq {
				victim = e
			}
		}
	} else {
		back := c.order.Back()
		if back == nil {
			return
		}
		victim = back.Value.(*entry)
	}
	c.order.Remove(victim.elem)
	delete(c.entries, victim.addr)
	c.metrics.Evictions++
}

// Len returns the number of cached routes.
func (c *Cache) Len() int { return len(c.entries) }

// Metrics returns the accumulated counters.
func (c *Cache) Metrics() Metrics { return c.metrics }
