package routecache

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestTableLongestPrefixMatch(t *testing.T) {
	var tb Table
	if err := tb.Insert(mustPrefix("10.0.0.0/8"), 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(mustPrefix("10.1.0.0/16"), 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(mustPrefix("10.1.2.0/24"), 3); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want uint32
	}{
		{"10.2.3.4", 1},
		{"10.1.9.9", 2},
		{"10.1.2.200", 3},
	}
	for _, c := range cases {
		nh, ok, cost := tb.Lookup(netip.MustParseAddr(c.addr))
		if !ok || nh != c.want {
			t.Errorf("Lookup(%s) = %d/%v, want %d", c.addr, nh, ok, c.want)
		}
		if cost < 8 {
			t.Errorf("Lookup(%s) cost %d implausibly low", c.addr, cost)
		}
	}
	if _, ok, _ := tb.Lookup(netip.MustParseAddr("192.168.0.1")); ok {
		t.Error("no route expected")
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableRejectsIPv6(t *testing.T) {
	var tb Table
	if err := tb.Insert(netip.MustParsePrefix("::/0"), 1); err == nil {
		t.Error("want error for IPv6 prefix")
	}
}

func TestTableDefaultRoute(t *testing.T) {
	var tb Table
	_ = tb.Insert(mustPrefix("0.0.0.0/0"), 42)
	nh, ok, cost := tb.Lookup(netip.MustParseAddr("8.8.8.8"))
	if !ok || nh != 42 {
		t.Errorf("default route: %d/%v", nh, ok)
	}
	if cost != 1 {
		t.Errorf("default route cost = %d, want 1", cost)
	}
}

func TestTableReplaceRoute(t *testing.T) {
	var tb Table
	_ = tb.Insert(mustPrefix("10.0.0.0/8"), 1)
	_ = tb.Insert(mustPrefix("10.0.0.0/8"), 9)
	if tb.Len() != 1 {
		t.Errorf("Len = %d after replace", tb.Len())
	}
	nh, _, _ := tb.Lookup(netip.MustParseAddr("10.1.1.1"))
	if nh != 9 {
		t.Errorf("nexthop = %d, want 9", nh)
	}
}

func TestCacheCorrectness(t *testing.T) {
	// Whatever the policy, the cache must return the table's answer.
	tb := BuildFIB(2000, 7)
	w := Mix(GameWorkload(5000, 20, 0.001, 8), WebWorkload(5000, 1000, 9), 0.5, 10)
	for _, pol := range []Policy{PolicyNone, PolicyLRU, PolicyLFU, PolicySizePref, PolicyFreqPref} {
		c, err := NewCache(DefaultCacheConfig(pol, 64), tb)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range w {
			got, _ := c.Lookup(p.Dst, p.Size)
			want, _, _ := tb.Lookup(p.Dst)
			if got != want {
				t.Fatalf("%v: cache answer %d != table %d for %v", pol, got, want, p.Dst)
			}
			if c.Len() > 64 {
				t.Fatalf("%v: cache exceeded capacity: %d", pol, c.Len())
			}
		}
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache(DefaultCacheConfig(PolicyLRU, 0), &Table{}); err == nil {
		t.Error("want error for zero capacity")
	}
	if _, err := NewCache(DefaultCacheConfig(PolicyLRU, 4), nil); err == nil {
		t.Error("want error for nil table")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	tb := &Table{}
	_ = tb.Insert(mustPrefix("0.0.0.0/0"), 1)
	c, _ := NewCache(DefaultCacheConfig(PolicyLRU, 2), tb)
	a := netip.MustParseAddr("1.1.1.1")
	b := netip.MustParseAddr("2.2.2.2")
	d := netip.MustParseAddr("3.3.3.3")
	c.Lookup(a, 100)
	c.Lookup(b, 100)
	c.Lookup(a, 100) // a most recent
	c.Lookup(d, 100) // evicts b
	m0 := c.Metrics()
	if _, hit := c.Lookup(a, 100); !hit {
		t.Error("a should still be cached")
	}
	if _, hit := c.Lookup(b, 100); hit {
		t.Error("b should have been evicted")
	}
	_ = m0
}

func TestLFURetainsFrequent(t *testing.T) {
	tb := &Table{}
	_ = tb.Insert(mustPrefix("0.0.0.0/0"), 1)
	c, _ := NewCache(DefaultCacheConfig(PolicyLFU, 2), tb)
	hot := netip.MustParseAddr("1.1.1.1")
	for i := 0; i < 10; i++ {
		c.Lookup(hot, 100)
	}
	c.Lookup(netip.MustParseAddr("2.2.2.2"), 100)
	// A stream of one-shot destinations churns the cold slot only.
	for i := 0; i < 50; i++ {
		c.Lookup(netip.AddrFrom4([4]byte{9, 9, byte(i), 1}), 100)
	}
	if _, hit := c.Lookup(hot, 100); !hit {
		t.Error("LFU should retain the hot route")
	}
}

func TestSizePrefAdmission(t *testing.T) {
	tb := &Table{}
	_ = tb.Insert(mustPrefix("0.0.0.0/0"), 1)
	cfg := DefaultCacheConfig(PolicySizePref, 8)
	c, _ := NewCache(cfg, tb)
	small := netip.MustParseAddr("1.1.1.1")
	big := netip.MustParseAddr("2.2.2.2")
	c.Lookup(small, 100) // admitted
	c.Lookup(big, 1500)  // not admitted
	if _, hit := c.Lookup(small, 100); !hit {
		t.Error("small-packet route should be cached")
	}
	if _, hit := c.Lookup(big, 1500); hit {
		t.Error("large-packet route should not be cached")
	}
	// Large packets still benefit from routes installed by small ones.
	if _, hit := c.Lookup(small, 1500); !hit {
		t.Error("large packet should hit a route installed by small packets")
	}
}

func TestFreqPrefAdmitsOnSecondMiss(t *testing.T) {
	tb := &Table{}
	_ = tb.Insert(mustPrefix("0.0.0.0/0"), 1)
	c, _ := NewCache(DefaultCacheConfig(PolicyFreqPref, 8), tb)
	a := netip.MustParseAddr("1.1.1.1")
	c.Lookup(a, 100) // first miss: ghost only
	if c.Len() != 0 {
		t.Error("first miss should not install")
	}
	c.Lookup(a, 100) // second miss: installed
	if c.Len() != 1 {
		t.Error("second miss should install")
	}
	if _, hit := c.Lookup(a, 100); !hit {
		t.Error("third lookup should hit")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[Policy]string{
		PolicyNone: "none", PolicyLRU: "lru", PolicyLFU: "lfu",
		PolicySizePref: "size-pref", PolicyFreqPref: "freq-pref", Policy(99): "unknown",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestGameTrafficCachesWell(t *testing.T) {
	// The paper's claim: game traffic's stable, small working set is very
	// cacheable; a small LRU should hit nearly always.
	tb := BuildFIB(5000, 1)
	game := GameWorkload(50000, 22, 0.0005, 2)
	c, _ := NewCache(DefaultCacheConfig(PolicyLRU, 32), tb)
	m := Run(c, game)
	if m.HitRatio() < 0.99 {
		t.Errorf("game hit ratio = %.4f, want > 0.99", m.HitRatio())
	}
	none, _ := NewCache(DefaultCacheConfig(PolicyNone, 1), tb)
	m0 := Run(none, game)
	if m.MeanCost() >= m0.MeanCost()/2 {
		t.Errorf("caching should slash lookup cost: %.2f vs %.2f", m.MeanCost(), m0.MeanCost())
	}
}

func TestSizePrefProtectsGameUnderWebPressure(t *testing.T) {
	// The §IV-B ablation in miniature: under mixed game+web load with a
	// small cache, size-preferential admission must serve the game packets
	// better than plain LRU does.
	tb := BuildFIB(5000, 3)
	game := GameWorkload(40000, 22, 0.0005, 4)
	web := WebWorkload(40000, 30000, 5)
	mixed := Mix(game, web, 0.5, 6)

	gameHits := func(pol Policy) float64 {
		c, _ := NewCache(DefaultCacheConfig(pol, 48), tb)
		var gamePk, gameHit float64
		for _, p := range mixed {
			_, hit := c.Lookup(p.Dst, p.Size)
			if p.Size <= 478 && p.Dst.As4()[0] == 172 { // game packets
				gamePk++
				if hit {
					gameHit++
				}
			}
		}
		return gameHit / gamePk
	}
	lru := gameHits(PolicyLRU)
	sizePref := gameHits(PolicySizePref)
	if sizePref <= lru {
		t.Errorf("size-pref game hit ratio %.4f should beat LRU %.4f", sizePref, lru)
	}
	if sizePref < 0.95 {
		t.Errorf("size-pref game hit ratio = %.4f, want > 0.95", sizePref)
	}
}

func TestWorkloadShapes(t *testing.T) {
	game := GameWorkload(10000, 22, 0.001, 11)
	if len(game) != 10000 {
		t.Fatal("length")
	}
	dsts := map[netip.Addr]bool{}
	for _, p := range game {
		dsts[p.Dst] = true
		if p.Size < 70 || p.Size > 478 {
			t.Fatalf("game size %d out of range", p.Size)
		}
	}
	if len(dsts) < 22 || len(dsts) > 80 {
		t.Errorf("game destinations = %d, want ~22 with slow churn", len(dsts))
	}

	web := WebWorkload(10000, 5000, 12)
	var big int
	wdsts := map[netip.Addr]bool{}
	for _, p := range web {
		wdsts[p.Dst] = true
		if p.Size > 478 {
			big++
		}
	}
	if len(wdsts) < 500 {
		t.Errorf("web destinations = %d, want many", len(wdsts))
	}
	if float64(big)/float64(len(web)) < 0.5 {
		t.Error("web packets should be mostly large")
	}
}

func TestMixPreservesAll(t *testing.T) {
	f := func(na, nb uint8) bool {
		a := make([]Packet, na)
		b := make([]Packet, nb)
		for i := range a {
			a[i].Size = 1
		}
		for i := range b {
			b[i].Size = 2
		}
		m := Mix(a, b, 0.5, 1)
		if len(m) != int(na)+int(nb) {
			return false
		}
		var c1, c2 int
		for _, p := range m {
			if p.Size == 1 {
				c1++
			} else {
				c2++
			}
		}
		return c1 == int(na) && c2 == int(nb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBuildFIBResolvesEverything(t *testing.T) {
	tb := BuildFIB(1000, 99)
	if tb.Len() < 900 {
		t.Errorf("FIB has %d prefixes", tb.Len())
	}
	r := []netip.Addr{
		netip.MustParseAddr("8.8.8.8"),
		netip.MustParseAddr("172.16.1.1"),
		netip.MustParseAddr("203.0.113.7"),
	}
	for _, a := range r {
		if _, ok, _ := tb.Lookup(a); !ok {
			t.Errorf("no route for %v despite default", a)
		}
	}
}
