// Package sourcemodel implements the paper's §V suggestion that "the trace
// itself can be used to more accurately develop source models for
// simulation" (citing Borella's game-traffic source models): it fits a
// compact per-direction source model to any record stream and regenerates
// statistically matching traffic from it.
//
// The model captures what the paper shows matters: the empirical payload
// size distributions per direction, the mean per-direction packet rates, the
// server tick period (recovered from the outbound timing spectrum), and the
// number of concurrent flows. It deliberately does not model session churn
// or map rotation — it is a *stationary* source model of the kind network
// simulators consume.
package sourcemodel

import (
	"errors"
	"math"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/stats"
	"cstrace/internal/trace"
)

// maxPayload bounds the fitted size distributions.
const maxPayload = 1500

// Fitter accumulates a model from a record stream in one pass.
type Fitter struct {
	inSizes  *stats.IntHistogram
	outSizes *stats.IntHistogram
	phase    []int64 // outbound arrival phase histogram, 1 ms bins over 100 ms
	clients  map[uint32]bool
	first    time.Duration
	last     time.Duration
	started  bool
}

// NewFitter creates an empty fitter.
func NewFitter() *Fitter {
	return &Fitter{
		inSizes:  stats.NewIntHistogram(maxPayload),
		outSizes: stats.NewIntHistogram(maxPayload),
		phase:    make([]int64, 100),
		clients:  make(map[uint32]bool),
	}
}

// Handle implements trace.Handler.
func (f *Fitter) Handle(r trace.Record) {
	if !f.started {
		f.started = true
		f.first = r.T
	}
	if r.T > f.last {
		f.last = r.T
	}
	if r.Client != 0 {
		f.clients[r.Client] = true
	}
	if r.Dir == trace.In {
		f.inSizes.Add(int(r.App))
	} else {
		f.outSizes.Add(int(r.App))
		f.phase[int(r.T/time.Millisecond)%100]++
	}
}

// Model is a fitted stationary source model.
type Model struct {
	// Tick is the recovered server broadcast period.
	Tick time.Duration
	// InRate and OutRate are aggregate packet rates (packets/second).
	InRate, OutRate float64
	// Flows is the number of concurrent point-to-point flows to emulate.
	Flows int
	// InSizes and OutSizes are the empirical payload distributions.
	InSizes, OutSizes dist.Empirical
	// SyncFraction is the share of outbound packets that ride the
	// synchronized tick burst (vs. independently timed packets).
	SyncFraction float64
}

// Fit finalizes the model. It fails if the stream was empty or too short.
func (f *Fitter) Fit() (*Model, error) {
	span := (f.last - f.first).Seconds()
	if !f.started || span <= 0 {
		return nil, errors.New("sourcemodel: not enough data")
	}
	m := &Model{
		InRate:  float64(f.inSizes.Total()) / span,
		OutRate: float64(f.outSizes.Total()) / span,
		Flows:   len(f.clients),
	}
	if m.Flows == 0 {
		m.Flows = 1
	}
	m.InSizes = quantileTable(f.inSizes)
	m.OutSizes = quantileTable(f.outSizes)
	m.Tick, m.SyncFraction = recoverTick(f.phase)
	return m, nil
}

// quantileTable compresses a histogram into a 512-entry empirical sampler.
func quantileTable(h *stats.IntHistogram) dist.Empirical {
	const n = 512
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / n
		v := quantileOfInt(h, q)
		vals = append(vals, v)
	}
	return dist.Empirical{Values: vals}
}

func quantileOfInt(h *stats.IntHistogram, q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var cum int64
	for v := 0; v <= h.Max(); v++ {
		cum += h.Count(v)
		if cum > target {
			return float64(v)
		}
	}
	return float64(h.Max())
}

// recoverTick finds the broadcast period from the outbound phase histogram:
// the autocorrelation of the 1 ms phase bins peaks at the tick period. The
// fraction of mass concentrated at the peak phase estimates how much of the
// traffic is synchronized.
func recoverTick(phase []int64) (time.Duration, float64) {
	xs := make([]float64, len(phase))
	var total float64
	for i, c := range phase {
		xs[i] = float64(c)
		total += float64(c)
	}
	if total == 0 {
		return 50 * time.Millisecond, 0
	}
	// Candidate periods dividing 100 ms evenly.
	best, bestScore := 50, math.Inf(-1)
	for _, p := range []int{10, 20, 25, 50, 100} {
		// Sum mass at multiples of p relative to uniform expectation.
		var mass float64
		for i := 0; i < len(xs); i += p {
			mass += xs[i]
		}
		expect := total * float64(len(xs)/p) / float64(len(xs))
		score := mass - expect
		if score > bestScore {
			bestScore, best = score, p
		}
	}
	// Synchronized fraction: excess mass in the burst bins.
	var burst float64
	for i := 0; i < len(xs); i += best {
		burst += xs[i]
	}
	frac := (burst - total*float64(len(xs)/best)/float64(len(xs))) / total
	if frac < 0 {
		frac = 0
	}
	return time.Duration(best) * time.Millisecond, frac
}

// Generate synthesizes duration worth of traffic from the model into h.
// Flows are numbered 1..Flows. Deterministic for a given seed.
func (m *Model) Generate(duration time.Duration, seed uint64, h trace.Handler) error {
	if duration <= 0 {
		return errors.New("sourcemodel: duration must be positive")
	}
	if m.Tick <= 0 || m.InRate < 0 || m.OutRate < 0 {
		return errors.New("sourcemodel: invalid model")
	}
	rng := dist.NewRNG(seed)

	perFlowIn := m.InRate / float64(m.Flows)
	outPerTickPerFlow := m.OutRate * m.Tick.Seconds() / float64(m.Flows)

	type flowState struct{ nextIn time.Duration }
	flows := make([]flowState, m.Flows)
	for i := range flows {
		flows[i].nextIn = time.Duration(rng.Float64() * float64(time.Second) / perFlowIn)
	}

	carry := 0.0
	for t := time.Duration(0); t < duration; t += m.Tick {
		end := t + m.Tick
		if end > duration {
			end = duration
		}
		// Outbound: synchronized burst plus jittered remainder.
		for fi := range flows {
			carry += outPerTickPerFlow
			for carry >= 1 {
				carry--
				off := time.Duration(0)
				if !rng.Bool(m.SyncFraction) {
					off = time.Duration(rng.Float64() * float64(m.Tick))
				}
				if t+off < end {
					h.Handle(trace.Record{
						T: t + off, Dir: trace.Out, Kind: trace.KindGame,
						Client: uint32(fi + 1), App: uint16(m.OutSizes.Sample(rng)),
					})
				}
			}
		}
		// Inbound: per-flow Poisson-ish command streams.
		for fi := range flows {
			f := &flows[fi]
			for f.nextIn < end {
				if f.nextIn >= t {
					h.Handle(trace.Record{
						T: f.nextIn, Dir: trace.In, Kind: trace.KindGame,
						Client: uint32(fi + 1), App: uint16(m.InSizes.Sample(rng)),
					})
				}
				gap := (0.5 + rng.Float64()) / perFlowIn
				f.nextIn += time.Duration(gap * float64(time.Second))
			}
		}
	}
	return nil
}
