package sourcemodel

import (
	"math"
	"testing"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/dist"
	"cstrace/internal/gamesim"
	"cstrace/internal/trace"
	"cstrace/internal/webtraffic"
)

func fitFromSim(t *testing.T, seed uint64, d time.Duration) (*Model, *analysis.Counters) {
	t.Helper()
	cfg := gamesim.PaperConfig(seed)
	cfg.Duration = d
	cfg.Warmup = 5 * time.Minute
	cfg.Outages = nil
	cfg.AttemptRate = 0.5
	cfg.DiurnalAmp = 0

	f := NewFitter()
	var c analysis.Counters
	if _, err := gamesim.Run(cfg, trace.Tee(f, &c), nil); err != nil {
		t.Fatal(err)
	}
	m, err := f.Fit()
	if err != nil {
		t.Fatal(err)
	}
	return m, &c
}

func TestFitRecoversTick(t *testing.T) {
	m, _ := fitFromSim(t, 1, 5*time.Minute)
	if m.Tick != 50*time.Millisecond {
		t.Errorf("recovered tick = %v, want 50ms", m.Tick)
	}
	if m.SyncFraction < 0.7 {
		t.Errorf("sync fraction = %.2f, want high (synchronized broadcast)", m.SyncFraction)
	}
	if m.Flows < 15 || m.Flows > 60 {
		t.Errorf("flows = %d", m.Flows)
	}
}

func TestFitEmptyFails(t *testing.T) {
	f := NewFitter()
	if _, err := f.Fit(); err == nil {
		t.Error("want error for empty fit")
	}
}

func TestRegeneratedTrafficMatchesOriginal(t *testing.T) {
	// The §V loop: fit a source model on the trace, regenerate, and
	// compare the paper's Table II/III quantities.
	m, orig := fitFromSim(t, 2, 10*time.Minute)

	var regen analysis.Counters
	if err := m.Generate(10*time.Minute, 99, &regen); err != nil {
		t.Fatal(err)
	}

	origII := orig.TableII(10 * time.Minute)
	regenII := regen.TableII(10 * time.Minute)
	relDiff := func(a, b float64) float64 { return math.Abs(a-b) / b }

	if d := relDiff(float64(regenII.MeanPPSIn), float64(origII.MeanPPSIn)); d > 0.05 {
		t.Errorf("in pps: regen %.1f vs orig %.1f (%.1f%% off)",
			float64(regenII.MeanPPSIn), float64(origII.MeanPPSIn), d*100)
	}
	if d := relDiff(float64(regenII.MeanPPSOut), float64(origII.MeanPPSOut)); d > 0.05 {
		t.Errorf("out pps: regen %.1f vs orig %.1f (%.1f%% off)",
			float64(regenII.MeanPPSOut), float64(origII.MeanPPSOut), d*100)
	}
	origIII := orig.TableIII()
	regenIII := regen.TableIII()
	if d := relDiff(regenIII.MeanIn, origIII.MeanIn); d > 0.03 {
		t.Errorf("in size: regen %.1f vs orig %.1f", regenIII.MeanIn, origIII.MeanIn)
	}
	if d := relDiff(regenIII.MeanOut, origIII.MeanOut); d > 0.05 {
		t.Errorf("out size: regen %.1f vs orig %.1f", regenIII.MeanOut, origIII.MeanOut)
	}
}

func TestRegeneratedTrafficKeepsPeriodicity(t *testing.T) {
	// The regenerated stream must preserve the 50 ms burst structure the
	// paper identifies — that is the point of a faithful source model.
	m, _ := fitFromSim(t, 3, 5*time.Minute)
	w := analysis.NewIntervalWindow(10*time.Millisecond, 3000)
	if err := m.Generate(30*time.Second, 7, w); err != nil {
		t.Fatal(err)
	}
	out := w.OutPPS()
	var onTick, offTick float64
	for i, v := range out {
		if i%5 == 0 {
			onTick += v
		} else {
			offTick += v / 4
		}
	}
	if onTick < 3*offTick {
		t.Errorf("burst structure lost: on-tick mass %.0f vs off-tick %.0f", onTick, offTick)
	}
}

func TestGenerateValidation(t *testing.T) {
	m := &Model{Tick: 50 * time.Millisecond}
	if err := m.Generate(0, 1, trace.HandlerFunc(func(trace.Record) {})); err == nil {
		t.Error("want error for zero duration")
	}
	bad := &Model{Tick: 0}
	if err := bad.Generate(time.Second, 1, trace.HandlerFunc(func(trace.Record) {})); err == nil {
		t.Error("want error for zero tick")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	m, _ := fitFromSim(t, 4, 2*time.Minute)
	run := func() (int, uint64) {
		var n int
		var hash uint64
		h := trace.HandlerFunc(func(r trace.Record) {
			n++
			hash = hash*1099511628211 ^ uint64(r.T) ^ uint64(r.App)
		})
		if err := m.Generate(10*time.Second, 5, h); err != nil {
			t.Fatal(err)
		}
		return n, hash
	}
	n1, h1 := run()
	n2, h2 := run()
	if n1 != n2 || h1 != h2 {
		t.Error("generation must be deterministic for a fixed seed")
	}
	if n1 == 0 {
		t.Error("no traffic generated")
	}
}

func TestFitWebTrafficFindsNoGameTick(t *testing.T) {
	// Cross-check against the contrast workload: web/TCP traffic is
	// ack-clocked, not tick-clocked, so the fitted model must not report
	// a strong synchronized broadcast. (Fitting game traffic recovers
	// the 50 ms tick with a high sync fraction; see the tests above.)
	cfg := webtraffic.DefaultConfig(11)
	cfg.Duration = 5 * time.Minute
	f := NewFitter()
	if _, err := webtraffic.Generate(cfg, f); err != nil {
		t.Fatal(err)
	}
	m, err := f.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if m.Tick == 50*time.Millisecond && m.SyncFraction > 0.5 {
		t.Errorf("web traffic fitted as tick-synchronized: tick=%v sync=%.2f",
			m.Tick, m.SyncFraction)
	}
	// Size structure must reflect TCP bulk transfer: outbound mean far
	// above the game's ~130 B.
	var outMean float64
	probe := dist.NewRNG(1)
	for i := 0; i < 4000; i++ {
		outMean += m.OutSizes.Sample(probe)
	}
	outMean /= 4000
	if outMean < 400 {
		t.Errorf("fitted outbound mean %.0f B, want bulk-transfer sized", outMean)
	}
}
