// Package protocol defines the wire format spoken by the reference game
// server and its bot clients: a compact binary UDP protocol shaped like the
// Half-Life/Counter-Strike exchange the paper traces — a connect handshake,
// a steady client command stream of ~40-byte datagrams, and server snapshot
// broadcasts whose size scales with the number of entities in view.
//
// Every message starts with a 3-byte header: magic 'G', protocol version,
// and a message type. All multi-byte fields are big-endian.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the protocol version.
const Version = 1

const magic = 'G'

// MsgType identifies a message.
type MsgType uint8

const (
	// MsgConnectRequest asks for a player slot.
	MsgConnectRequest MsgType = iota + 1
	// MsgConnectAccept grants a slot.
	MsgConnectAccept
	// MsgConnectReject refuses the connection (server full).
	MsgConnectReject
	// MsgUserCmd carries one client input sample.
	MsgUserCmd
	// MsgSnapshot carries the server's world-state broadcast.
	MsgSnapshot
	// MsgDisconnect announces a clean leave (either side).
	MsgDisconnect
	// MsgInfoRequest probes a server for its browser line (A2S_INFO
	// style).
	MsgInfoRequest
	// MsgInfoResponse answers with name, map and occupancy.
	MsgInfoResponse
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgConnectRequest:
		return "connect-request"
	case MsgConnectAccept:
		return "connect-accept"
	case MsgConnectReject:
		return "connect-reject"
	case MsgUserCmd:
		return "usercmd"
	case MsgSnapshot:
		return "snapshot"
	case MsgDisconnect:
		return "disconnect"
	case MsgInfoRequest:
		return "info-request"
	case MsgInfoResponse:
		return "info-response"
	}
	return "unknown"
}

// Wire format errors.
var (
	ErrTruncated  = errors.New("protocol: truncated message")
	ErrBadMagic   = errors.New("protocol: bad magic")
	ErrBadVersion = errors.New("protocol: version mismatch")
	ErrBadType    = errors.New("protocol: unknown message type")
	ErrTooLong    = errors.New("protocol: field too long")
)

// MaxName bounds player name length.
const MaxName = 31

// MaxEntities bounds entities per snapshot (a full 32-slot server plus
// projectiles).
const MaxEntities = 64

// Peek returns the message type without a full decode.
func Peek(b []byte) (MsgType, error) {
	if len(b) < 3 {
		return 0, ErrTruncated
	}
	if b[0] != magic {
		return 0, ErrBadMagic
	}
	if b[1] != Version {
		return 0, ErrBadVersion
	}
	t := MsgType(b[2])
	if t < MsgConnectRequest || t > MsgInfoResponse {
		return 0, ErrBadType
	}
	return t, nil
}

func header(dst []byte, t MsgType) []byte {
	return append(dst, magic, Version, byte(t))
}

func checkHeader(b []byte, t MsgType) ([]byte, error) {
	got, err := Peek(b)
	if err != nil {
		return nil, err
	}
	if got != t {
		return nil, fmt.Errorf("protocol: expected %v, got %v", t, got)
	}
	return b[3:], nil
}

// ConnectRequest asks for a slot.
type ConnectRequest struct {
	Name string
}

// Marshal appends the encoding to dst.
func (m *ConnectRequest) Marshal(dst []byte) ([]byte, error) {
	if len(m.Name) > MaxName {
		return nil, ErrTooLong
	}
	dst = header(dst, MsgConnectRequest)
	dst = append(dst, byte(len(m.Name)))
	dst = append(dst, m.Name...)
	// Pad with a challenge nonce region so the request resembles the
	// ~40-byte handshake datagrams of the real protocol.
	var pad [16]byte
	return append(dst, pad[:]...), nil
}

// Unmarshal parses b.
func (m *ConnectRequest) Unmarshal(b []byte) error {
	p, err := checkHeader(b, MsgConnectRequest)
	if err != nil {
		return err
	}
	if len(p) < 1 {
		return ErrTruncated
	}
	n := int(p[0])
	if n > MaxName || len(p) < 1+n {
		return ErrTruncated
	}
	m.Name = string(p[1 : 1+n])
	return nil
}

// ConnectAccept grants a slot.
type ConnectAccept struct {
	PlayerID   uint8
	TickMillis uint16
	MapName    string
}

// Marshal appends the encoding to dst.
func (m *ConnectAccept) Marshal(dst []byte) ([]byte, error) {
	if len(m.MapName) > MaxName {
		return nil, ErrTooLong
	}
	dst = header(dst, MsgConnectAccept)
	dst = append(dst, m.PlayerID)
	dst = binary.BigEndian.AppendUint16(dst, m.TickMillis)
	dst = append(dst, byte(len(m.MapName)))
	return append(dst, m.MapName...), nil
}

// Unmarshal parses b.
func (m *ConnectAccept) Unmarshal(b []byte) error {
	p, err := checkHeader(b, MsgConnectAccept)
	if err != nil {
		return err
	}
	if len(p) < 4 {
		return ErrTruncated
	}
	m.PlayerID = p[0]
	m.TickMillis = binary.BigEndian.Uint16(p[1:3])
	n := int(p[3])
	if n > MaxName || len(p) < 4+n {
		return ErrTruncated
	}
	m.MapName = string(p[4 : 4+n])
	return nil
}

// ConnectReject refuses a connection.
type ConnectReject struct {
	Reason string
}

// Marshal appends the encoding to dst.
func (m *ConnectReject) Marshal(dst []byte) ([]byte, error) {
	if len(m.Reason) > MaxName {
		return nil, ErrTooLong
	}
	dst = header(dst, MsgConnectReject)
	dst = append(dst, byte(len(m.Reason)))
	return append(dst, m.Reason...), nil
}

// Unmarshal parses b.
func (m *ConnectReject) Unmarshal(b []byte) error {
	p, err := checkHeader(b, MsgConnectReject)
	if err != nil {
		return err
	}
	if len(p) < 1 {
		return ErrTruncated
	}
	n := int(p[0])
	if n > MaxName || len(p) < 1+n {
		return ErrTruncated
	}
	m.Reason = string(p[1 : 1+n])
	return nil
}

// UserCmd is one client input sample: the small, fixed-size datagram whose
// ~40-byte narrow distribution dominates the paper's inbound traffic.
type UserCmd struct {
	PlayerID uint8
	Seq      uint32
	Buttons  uint16
	Pitch    int16
	Yaw      int16
	MoveX    int8
	MoveY    int8
	// Impulse pads the command to the observed size class.
	Impulse [20]byte
}

// UserCmdSize is the fixed encoded size of a UserCmd.
const UserCmdSize = 3 + 1 + 4 + 2 + 2 + 2 + 1 + 1 + 20 // 36

// Marshal appends the encoding to dst.
func (m *UserCmd) Marshal(dst []byte) ([]byte, error) {
	dst = header(dst, MsgUserCmd)
	dst = append(dst, m.PlayerID)
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = binary.BigEndian.AppendUint16(dst, m.Buttons)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.Pitch))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.Yaw))
	dst = append(dst, byte(m.MoveX), byte(m.MoveY))
	return append(dst, m.Impulse[:]...), nil
}

// Unmarshal parses b.
func (m *UserCmd) Unmarshal(b []byte) error {
	p, err := checkHeader(b, MsgUserCmd)
	if err != nil {
		return err
	}
	if len(p) < UserCmdSize-3 {
		return ErrTruncated
	}
	m.PlayerID = p[0]
	m.Seq = binary.BigEndian.Uint32(p[1:5])
	m.Buttons = binary.BigEndian.Uint16(p[5:7])
	m.Pitch = int16(binary.BigEndian.Uint16(p[7:9]))
	m.Yaw = int16(binary.BigEndian.Uint16(p[9:11]))
	m.MoveX = int8(p[11])
	m.MoveY = int8(p[12])
	copy(m.Impulse[:], p[13:33])
	return nil
}

// EntityState is one entity in a snapshot.
type EntityState struct {
	ID   uint8
	X    int16
	Y    int16
	Z    int16
	Yaw  uint8
	Anim uint8
}

const entityStateSize = 9

// Snapshot is the server's periodic world-state broadcast: the size grows
// with the entity count, reproducing the paper's wide outbound size
// distribution.
type Snapshot struct {
	Tick     uint32
	Entities []EntityState
	// Events carries variable-length game events (shots, damage), padding
	// snapshots during intense rounds.
	Events []byte
}

// Marshal appends the encoding to dst.
func (m *Snapshot) Marshal(dst []byte) ([]byte, error) {
	if len(m.Entities) > MaxEntities {
		return nil, ErrTooLong
	}
	if len(m.Events) > 65535 {
		return nil, ErrTooLong
	}
	dst = header(dst, MsgSnapshot)
	dst = binary.BigEndian.AppendUint32(dst, m.Tick)
	dst = append(dst, byte(len(m.Entities)))
	for _, e := range m.Entities {
		dst = append(dst, e.ID)
		dst = binary.BigEndian.AppendUint16(dst, uint16(e.X))
		dst = binary.BigEndian.AppendUint16(dst, uint16(e.Y))
		dst = binary.BigEndian.AppendUint16(dst, uint16(e.Z))
		dst = append(dst, e.Yaw, e.Anim)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Events)))
	return append(dst, m.Events...), nil
}

// Unmarshal parses b.
func (m *Snapshot) Unmarshal(b []byte) error {
	p, err := checkHeader(b, MsgSnapshot)
	if err != nil {
		return err
	}
	if len(p) < 5 {
		return ErrTruncated
	}
	m.Tick = binary.BigEndian.Uint32(p[0:4])
	n := int(p[4])
	if n > MaxEntities {
		return ErrBadType
	}
	p = p[5:]
	if len(p) < n*entityStateSize {
		return ErrTruncated
	}
	if cap(m.Entities) < n {
		m.Entities = make([]EntityState, n)
	}
	m.Entities = m.Entities[:n]
	for i := 0; i < n; i++ {
		off := i * entityStateSize
		m.Entities[i] = EntityState{
			ID:   p[off],
			X:    int16(binary.BigEndian.Uint16(p[off+1 : off+3])),
			Y:    int16(binary.BigEndian.Uint16(p[off+3 : off+5])),
			Z:    int16(binary.BigEndian.Uint16(p[off+5 : off+7])),
			Yaw:  p[off+7],
			Anim: p[off+8],
		}
	}
	p = p[n*entityStateSize:]
	if len(p) < 2 {
		return ErrTruncated
	}
	ev := int(binary.BigEndian.Uint16(p[0:2]))
	if len(p) < 2+ev {
		return ErrTruncated
	}
	m.Events = append(m.Events[:0], p[2:2+ev]...)
	return nil
}

// Disconnect announces a clean leave.
type Disconnect struct {
	PlayerID uint8
	Reason   string
}

// Marshal appends the encoding to dst.
func (m *Disconnect) Marshal(dst []byte) ([]byte, error) {
	if len(m.Reason) > MaxName {
		return nil, ErrTooLong
	}
	dst = header(dst, MsgDisconnect)
	dst = append(dst, m.PlayerID, byte(len(m.Reason)))
	return append(dst, m.Reason...), nil
}

// Unmarshal parses b.
func (m *Disconnect) Unmarshal(b []byte) error {
	p, err := checkHeader(b, MsgDisconnect)
	if err != nil {
		return err
	}
	if len(p) < 2 {
		return ErrTruncated
	}
	m.PlayerID = p[0]
	n := int(p[1])
	if n > MaxName || len(p) < 2+n {
		return ErrTruncated
	}
	m.Reason = string(p[2 : 2+n])
	return nil
}
