package protocol

import "encoding/binary"

// Server-browser query messages. Clients discover servers out of band (the
// master-server protocol in internal/discovery) and then probe each with an
// InfoRequest; the reply carries what the in-game browser displays. The
// paper leans on this mechanism to explain the minutes-long player dips
// around its network outages: players "relied on dynamic server
// auto-discovery and auto-connecting to find this particular game server"
// (§III-A, citing Henderson's observations on game server discovery).

// InfoRequest probes a server for its browser line. Stateless and
// unauthenticated, like the Half-Life A2S_INFO query it mirrors.
type InfoRequest struct{}

// Marshal appends the encoding to dst.
func (m *InfoRequest) Marshal(dst []byte) ([]byte, error) {
	return header(dst, MsgInfoRequest), nil
}

// Unmarshal parses b.
func (m *InfoRequest) Unmarshal(b []byte) error {
	_, err := checkHeader(b, MsgInfoRequest)
	return err
}

// InfoResponse is the server's browser line.
type InfoResponse struct {
	ServerName string // display name, ≤ MaxName
	Map        string // current map, ≤ MaxName
	Players    uint8  // currently connected
	MaxPlayers uint8  // slot capacity
	Tick       uint16 // snapshot interval in milliseconds
}

// Marshal appends the encoding to dst.
func (m *InfoResponse) Marshal(dst []byte) ([]byte, error) {
	if len(m.ServerName) > MaxName || len(m.Map) > MaxName {
		return nil, ErrTooLong
	}
	dst = header(dst, MsgInfoResponse)
	dst = append(dst, byte(len(m.ServerName)))
	dst = append(dst, m.ServerName...)
	dst = append(dst, byte(len(m.Map)))
	dst = append(dst, m.Map...)
	dst = append(dst, m.Players, m.MaxPlayers)
	dst = binary.BigEndian.AppendUint16(dst, m.Tick)
	return dst, nil
}

// Unmarshal parses b.
func (m *InfoResponse) Unmarshal(b []byte) error {
	p, err := checkHeader(b, MsgInfoResponse)
	if err != nil {
		return err
	}
	if m.ServerName, p, err = getString(p); err != nil {
		return err
	}
	if m.Map, p, err = getString(p); err != nil {
		return err
	}
	if len(p) < 4 {
		return ErrTruncated
	}
	m.Players = p[0]
	m.MaxPlayers = p[1]
	m.Tick = binary.BigEndian.Uint16(p[2:4])
	return nil
}

// getString decodes a length-prefixed string bounded by MaxName.
func getString(p []byte) (string, []byte, error) {
	if len(p) < 1 {
		return "", nil, ErrTruncated
	}
	n := int(p[0])
	if n > MaxName {
		return "", nil, ErrTooLong
	}
	if len(p) < 1+n {
		return "", nil, ErrTruncated
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}
