package protocol

import (
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanicsOnRandomBytes feeds arbitrary bytes to every
// message decoder: the server's read loop hands them whatever arrives on
// the socket.
func TestUnmarshalNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Peek(data)
		var cr ConnectRequest
		_ = cr.Unmarshal(data)
		var ca ConnectAccept
		_ = ca.Unmarshal(data)
		var cj ConnectReject
		_ = cj.Unmarshal(data)
		var uc UserCmd
		_ = uc.Unmarshal(data)
		var sn Snapshot
		_ = sn.Unmarshal(data)
		var dc Disconnect
		_ = dc.Unmarshal(data)
		var ir InfoRequest
		_ = ir.Unmarshal(data)
		var resp InfoResponse
		_ = resp.Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestUnmarshalNeverPanicsOnMutatedValidMessages flips each byte of a valid
// message in turn — the classic off-by-one hunting ground.
func TestUnmarshalNeverPanicsOnMutatedValidMessages(t *testing.T) {
	resp := InfoResponse{ServerName: "srv", Map: "de_dust2", Players: 18, MaxPlayers: 22, Tick: 50}
	b, err := resp.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		for _, delta := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), b...)
			mut[i] ^= delta
			var out InfoResponse
			_ = out.Unmarshal(mut)
			if typ, err := Peek(mut); err == nil && typ == MsgInfoResponse {
				// Valid header: decode may succeed or fail, but
				// strings must stay within bounds.
				if len(out.ServerName) > MaxName || len(out.Map) > MaxName {
					t.Fatalf("byte %d: oversized field decoded", i)
				}
			}
		}
	}
}
