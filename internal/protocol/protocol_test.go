package protocol

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestConnectRequestRoundTrip(t *testing.T) {
	m := ConnectRequest{Name: "olygamer_fan"}
	b, err := m.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got ConnectRequest
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name {
		t.Errorf("Name = %q", got.Name)
	}
	// Handshake datagrams are ~40 bytes in the trace.
	if len(b) < 30 || len(b) > 52 {
		t.Errorf("encoded size %d outside handshake class", len(b))
	}
}

func TestConnectAcceptRoundTrip(t *testing.T) {
	m := ConnectAccept{PlayerID: 7, TickMillis: 50, MapName: "de_dust2"}
	b, _ := m.Marshal(nil)
	var got ConnectAccept
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("got %+v", got)
	}
}

func TestConnectRejectRoundTrip(t *testing.T) {
	m := ConnectReject{Reason: "server full"}
	b, _ := m.Marshal(nil)
	var got ConnectReject
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.Reason != m.Reason {
		t.Errorf("got %+v", got)
	}
}

func TestUserCmdRoundTripAndSize(t *testing.T) {
	m := UserCmd{PlayerID: 3, Seq: 123456, Buttons: 0x0101, Pitch: -300, Yaw: 1200, MoveX: -1, MoveY: 1}
	copy(m.Impulse[:], "nade")
	b, err := m.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != UserCmdSize {
		t.Errorf("encoded size %d, want %d", len(b), UserCmdSize)
	}
	var got UserCmd
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("got %+v want %+v", got, m)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	m := Snapshot{
		Tick: 99,
		Entities: []EntityState{
			{ID: 1, X: 100, Y: -200, Z: 32, Yaw: 90, Anim: 2},
			{ID: 2, X: -5, Y: 7, Z: 0, Yaw: 255, Anim: 0},
		},
		Events: []byte{0xde, 0xad},
	}
	b, err := m.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.Tick != m.Tick || len(got.Entities) != 2 || !bytes.Equal(got.Events, m.Events) {
		t.Fatalf("got %+v", got)
	}
	for i := range m.Entities {
		if got.Entities[i] != m.Entities[i] {
			t.Errorf("entity %d: %+v != %+v", i, got.Entities[i], m.Entities[i])
		}
	}
	// Snapshot size must scale with entity count (the paper's out-size
	// growth with active players).
	m2 := Snapshot{Tick: 1, Entities: make([]EntityState, 20)}
	b2, _ := m2.Marshal(nil)
	if len(b2) <= len(b) {
		t.Error("more entities must mean bigger snapshots")
	}
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(tick uint32, n uint8, events []byte) bool {
		ents := make([]EntityState, int(n)%MaxEntities)
		for i := range ents {
			ents[i] = EntityState{ID: uint8(i), X: int16(i * 31), Y: int16(-i), Z: int16(i), Yaw: uint8(i), Anim: uint8(i % 3)}
		}
		if len(events) > 300 {
			events = events[:300]
		}
		m := Snapshot{Tick: tick, Entities: ents, Events: events}
		b, err := m.Marshal(nil)
		if err != nil {
			return false
		}
		var got Snapshot
		if err := got.Unmarshal(b); err != nil {
			return false
		}
		if got.Tick != tick || len(got.Entities) != len(ents) || !bytes.Equal(got.Events, events) {
			return false
		}
		for i := range ents {
			if got.Entities[i] != ents[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDisconnectRoundTrip(t *testing.T) {
	m := Disconnect{PlayerID: 9, Reason: "rage quit"}
	b, _ := m.Marshal(nil)
	var got Disconnect
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("got %+v", got)
	}
}

func TestPeek(t *testing.T) {
	m := UserCmd{}
	b, _ := m.Marshal(nil)
	typ, err := Peek(b)
	if err != nil || typ != MsgUserCmd {
		t.Errorf("Peek = %v, %v", typ, err)
	}
	if _, err := Peek([]byte{magic, Version}); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	if _, err := Peek([]byte{'X', Version, 1}); err != ErrBadMagic {
		t.Errorf("magic: %v", err)
	}
	if _, err := Peek([]byte{magic, 99, 1}); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	if _, err := Peek([]byte{magic, Version, 200}); err != ErrBadType {
		t.Errorf("type: %v", err)
	}
}

func TestTypeMismatch(t *testing.T) {
	b, _ := (&UserCmd{}).Marshal(nil)
	var snap Snapshot
	if err := snap.Unmarshal(b); err == nil {
		t.Error("want type mismatch error")
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	msgs := [][]byte{}
	b1, _ := (&ConnectRequest{Name: "a"}).Marshal(nil)
	b2, _ := (&ConnectAccept{MapName: "de_aztec"}).Marshal(nil)
	b3, _ := (&UserCmd{}).Marshal(nil)
	b4, _ := (&Snapshot{Entities: []EntityState{{ID: 1}}, Events: []byte{1, 2, 3}}).Marshal(nil)
	b5, _ := (&Disconnect{Reason: "x"}).Marshal(nil)
	b6, _ := (&ConnectReject{Reason: "full"}).Marshal(nil)
	msgs = append(msgs, b1, b2, b3, b4, b5, b6)
	for _, b := range msgs {
		for cut := 0; cut <= len(b); cut++ {
			p := b[:cut]
			var cr ConnectRequest
			var ca ConnectAccept
			var cj ConnectReject
			var uc UserCmd
			var sn Snapshot
			var dc Disconnect
			_ = cr.Unmarshal(p)
			_ = ca.Unmarshal(p)
			_ = cj.Unmarshal(p)
			_ = uc.Unmarshal(p)
			_ = sn.Unmarshal(p)
			_ = dc.Unmarshal(p)
		}
	}
}

func TestFieldLimits(t *testing.T) {
	long := string(make([]byte, MaxName+1))
	if _, err := (&ConnectRequest{Name: long}).Marshal(nil); err != ErrTooLong {
		t.Error("name limit")
	}
	if _, err := (&ConnectAccept{MapName: long}).Marshal(nil); err != ErrTooLong {
		t.Error("map limit")
	}
	if _, err := (&ConnectReject{Reason: long}).Marshal(nil); err != ErrTooLong {
		t.Error("reason limit")
	}
	if _, err := (&Disconnect{Reason: long}).Marshal(nil); err != ErrTooLong {
		t.Error("disconnect limit")
	}
	if _, err := (&Snapshot{Entities: make([]EntityState, MaxEntities+1)}).Marshal(nil); err != ErrTooLong {
		t.Error("entity limit")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgSnapshot.String() != "snapshot" || MsgType(0).String() != "unknown" {
		t.Error("String")
	}
}
