package protocol

import (
	"testing"
	"testing/quick"
)

func TestInfoRequestRoundTrip(t *testing.T) {
	var m InfoRequest
	b, err := m.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ, err := Peek(b); err != nil || typ != MsgInfoRequest {
		t.Fatalf("Peek = %v, %v", typ, err)
	}
	var out InfoRequest
	if err := out.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
}

func TestInfoResponseRoundTrip(t *testing.T) {
	in := InfoResponse{
		ServerName: "Olygamer.com CS 24/7",
		Map:        "de_dust2",
		Players:    18,
		MaxPlayers: 22,
		Tick:       50,
	}
	b, err := in.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out InfoResponse
	if err := out.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("got %+v, want %+v", out, in)
	}
}

func TestInfoResponseRejectsLongStrings(t *testing.T) {
	in := InfoResponse{ServerName: string(make([]byte, MaxName+1))}
	if _, err := in.Marshal(nil); err != ErrTooLong {
		t.Errorf("err = %v, want ErrTooLong", err)
	}
}

func TestInfoResponseTruncation(t *testing.T) {
	in := InfoResponse{ServerName: "srv", Map: "de_aztec", Players: 1, MaxPlayers: 22, Tick: 50}
	b, err := in.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail cleanly.
	for cut := 0; cut < len(b); cut++ {
		var out InfoResponse
		if err := out.Unmarshal(b[:cut]); err == nil {
			t.Errorf("prefix of %d bytes decoded successfully", cut)
		}
	}
}

func TestInfoResponseQuick(t *testing.T) {
	f := func(nameRaw, mapRaw []byte, players, maxPlayers uint8, tick uint16) bool {
		name := clampStr(nameRaw)
		mp := clampStr(mapRaw)
		in := InfoResponse{ServerName: name, Map: mp, Players: players, MaxPlayers: maxPlayers, Tick: tick}
		b, err := in.Marshal(nil)
		if err != nil {
			return false
		}
		var out InfoResponse
		if err := out.Unmarshal(b); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampStr(b []byte) string {
	if len(b) > MaxName {
		b = b[:MaxName]
	}
	return string(b)
}

func TestInfoRequestRejectsWrongType(t *testing.T) {
	resp := InfoResponse{ServerName: "x", Map: "y"}
	b, err := resp.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var req InfoRequest
	if err := req.Unmarshal(b); err == nil {
		t.Error("InfoRequest accepted an InfoResponse")
	}
}
