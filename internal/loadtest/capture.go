package loadtest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cstrace/internal/discovery"
	"cstrace/internal/gameserver"
	"cstrace/internal/trace"
)

// CaptureSegmentPayload is the live capture's raw segment size. Offline
// encoders favor big segments (compression ratio, decode parallelism); a
// capture that may be SIGKILLed favors small ones, because a crash loses at
// most the unsealed segment plus the reorder window. 2 KiB is a few hundred
// records — well under a second of tail at game-server rates.
const CaptureSegmentPayload = 2048

// Capture adapts a gameserver BatchTap to a v4 trace.Writer: the server's
// goroutines deliver coalesced record blocks concurrently, so writes are
// serialized under a mutex, and a SortWindow absorbs the bounded disorder
// between the tick-burst blocks and the coalesced read-loop records (a
// record may trail its datagram by up to one tick on either side of the
// interleave). Flush seals the trace; the file is then a normal v4 capture
// that cstrace.AnalyzeTrace reads like any simulated trace.
//
// The capture is crash-only: segments are small (CaptureSegmentPayload),
// every sealed frame is fsynced before the next begins (SyncEvery = 1, when
// out can Sync), and a timed pump releases the reorder window so records
// stop aging in memory even when the record rate is too low to trip the
// writer's count-based release. Kill the process at any point and the file
// on disk is a valid segment stream that trace.Recover salvages.
type Capture struct {
	mu          sync.Mutex
	w           *trace.Writer
	lastRelease time.Time
	window      time.Duration
}

// NewCapture creates a capture writing the v4 format to out. tick is the
// server's TickInterval; the writer's reorder window is sized from it. When
// out has a Sync method (an *os.File — pass the file itself, not a
// buffering wrapper, or durability is silently lost), every sealed segment
// is fsynced.
func NewCapture(out io.Writer, tick time.Duration) *Capture {
	w := trace.NewWriter(out)
	w.SortWindow = 4 * tick
	w.SegmentPayload = CaptureSegmentPayload
	w.SyncEvery = 1
	return &Capture{w: w, window: w.SortWindow, lastRelease: time.Now()}
}

// HandleBatch implements trace.BatchHandler (the BatchTap contract).
func (c *Capture) HandleBatch(rs []trace.Record) {
	c.mu.Lock()
	c.w.HandleBatch(rs)
	// Timed pump: at low record rates the writer's count-based reorder
	// release may never trip, leaving everything unsealed until Flush — the
	// exact bytes a crash destroys. Once per window, push the aged span of
	// the reorder buffer down into segments.
	if now := time.Now(); now.Sub(c.lastRelease) > c.window {
		c.lastRelease = now
		_ = c.w.Release() // the latched error resurfaces on Flush/Err
	}
	c.mu.Unlock()
}

// Handle implements trace.Handler.
func (c *Capture) Handle(r trace.Record) {
	c.mu.Lock()
	c.w.Handle(r)
	c.mu.Unlock()
}

// Flush seals the trace and returns the first error latched anywhere on
// the write path. Call once, after the tapping server has stopped.
func (c *Capture) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Err(); err != nil {
		return err
	}
	return c.w.Flush()
}

// Err returns the capture's latched write-path error without sealing it —
// what a CLI should print (and exit nonzero on) when the capture failed
// underneath a healthy-looking run.
func (c *Capture) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.w.Err()
}

// SpawnConfig parameterizes one in-process game server for a self-contained
// loopback load run.
type SpawnConfig struct {
	// Addr is the UDP listen address; empty means "127.0.0.1:0".
	Addr string
	// Slots, Tick and Name forward to gameserver.Config (zero values take
	// the gameserver defaults).
	Slots int
	Tick  time.Duration
	Name  string
	// ClientTimeout forwards to gameserver.Config.ClientTimeout.
	ClientTimeout time.Duration
	// Master, when non-empty, registers the server with that master using
	// Heartbeat (default 1s) — the discovery path bots browse for
	// fail-over.
	Master    string
	Heartbeat time.Duration
	// TraceOut, when non-nil, captures every datagram the server sends or
	// receives into a v4 trace written to it (via the server's BatchTap).
	TraceOut io.Writer
}

// Spawned is a running in-process server: a real UDP socket driven by the
// same gameserver code as cmd/csserver, plus the discovery registration and
// trace capture around it.
type Spawned struct {
	cfg    SpawnConfig
	srv    *gameserver.Server
	reg    *discovery.Registrant
	cap    *Capture
	cancel context.CancelFunc
	done   chan struct{}

	stopOnce sync.Once
	stopErr  error
}

// Spawn starts a server. The caller must end it with Kill (crash) or
// Shutdown (graceful); both seal the capture trace.
func Spawn(cfg SpawnConfig) (*Spawned, error) {
	gcfg := gameserver.DefaultConfig()
	if cfg.Addr != "" {
		gcfg.Addr = cfg.Addr
	}
	if cfg.Slots > 0 {
		gcfg.Slots = cfg.Slots
	}
	if cfg.Tick > 0 {
		gcfg.TickInterval = cfg.Tick
	}
	if cfg.Name != "" {
		gcfg.ServerName = cfg.Name
	}
	if cfg.ClientTimeout > 0 {
		gcfg.ClientTimeout = cfg.ClientTimeout
	}
	sp := &Spawned{cfg: cfg, done: make(chan struct{})}
	if cfg.TraceOut != nil {
		sp.cap = NewCapture(cfg.TraceOut, gcfg.TickInterval)
		gcfg.BatchTap = sp.cap
	}
	srv, err := gameserver.Listen(gcfg)
	if err != nil {
		return nil, err
	}
	sp.srv = srv
	if cfg.Master != "" {
		beat := cfg.Heartbeat
		if beat <= 0 {
			beat = time.Second
		}
		port := uint16(srv.Addr().(*net.UDPAddr).Port)
		reg, err := discovery.Register(cfg.Master, port, beat)
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("loadtest: register %s: %w", cfg.Master, err)
		}
		sp.reg = reg
	}
	ctx, cancel := context.WithCancel(context.Background())
	sp.cancel = cancel
	go func() {
		defer close(sp.done)
		_ = srv.Serve(ctx)
	}()
	return sp, nil
}

// Addr returns the server's bound UDP address.
func (s *Spawned) Addr() string { return s.srv.Addr().String() }

// Stats returns the server's counters.
func (s *Spawned) Stats() gameserver.Stats { return s.srv.Stats() }

// Target returns the harness target for this server, with Kill wired as
// the disturbance hook.
func (s *Spawned) Target() Target {
	return Target{Addr: s.Addr(), Kill: s.Kill}
}

// stop ends the server once. graceful distinguishes a clean shutdown
// (deregister with a bye) from a crash (heartbeats just stop, and the
// master entry lapses by TTL — the paper's outage, where the server is
// invisible to browsing clients until it re-registers).
func (s *Spawned) stop(graceful bool) error {
	s.stopOnce.Do(func() {
		if s.reg != nil {
			if graceful {
				s.reg.Stop()
			} else {
				s.reg.Pause()
			}
		}
		s.cancel()
		<-s.done
		if s.cap != nil {
			// Seal the capture even on a kill: the crash semantics apply
			// to the socket, not to the measurement file.
			s.stopErr = s.cap.Flush()
		}
	})
	return s.stopErr
}

// Kill terminates the server as a crash: the socket closes mid-run and
// heartbeats stop without a deregistration, so discovery-driven clients
// must notice via failed probes. The capture trace is still sealed.
func (s *Spawned) Kill() error { return s.stop(false) }

// Shutdown ends the server gracefully: deregister, close, seal the trace.
func (s *Spawned) Shutdown() error { return s.stop(true) }

// errKillUnsupported reports a kill request against a target with no Kill
// hook (an external process csload cannot reach).
var errKillUnsupported = errors.New("loadtest: kill target has no Kill hook (external server?)")
