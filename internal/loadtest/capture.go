package loadtest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cstrace/internal/discovery"
	"cstrace/internal/gameserver"
	"cstrace/internal/trace"
)

// Capture adapts a gameserver BatchTap to a v4 trace.Writer: the server's
// goroutines deliver coalesced record blocks concurrently, so writes are
// serialized under a mutex, and a SortWindow absorbs the bounded disorder
// between the tick-burst blocks and the coalesced read-loop records (a
// record may trail its datagram by up to one tick on either side of the
// interleave). Flush seals the trace; the file is then a normal v4 capture
// that cstrace.AnalyzeTrace reads like any simulated trace.
type Capture struct {
	mu sync.Mutex
	w  *trace.Writer
}

// NewCapture creates a capture writing the v4 format to out. tick is the
// server's TickInterval; the writer's reorder window is sized from it.
func NewCapture(out io.Writer, tick time.Duration) *Capture {
	w := trace.NewWriter(out)
	w.SortWindow = 4 * tick
	return &Capture{w: w}
}

// HandleBatch implements trace.BatchHandler (the BatchTap contract).
func (c *Capture) HandleBatch(rs []trace.Record) {
	c.mu.Lock()
	c.w.HandleBatch(rs)
	c.mu.Unlock()
}

// Handle implements trace.Handler.
func (c *Capture) Handle(r trace.Record) {
	c.mu.Lock()
	c.w.Handle(r)
	c.mu.Unlock()
}

// Flush seals the trace and returns the first error latched anywhere on
// the write path. Call once, after the tapping server has stopped.
func (c *Capture) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Err(); err != nil {
		return err
	}
	return c.w.Flush()
}

// SpawnConfig parameterizes one in-process game server for a self-contained
// loopback load run.
type SpawnConfig struct {
	// Addr is the UDP listen address; empty means "127.0.0.1:0".
	Addr string
	// Slots, Tick and Name forward to gameserver.Config (zero values take
	// the gameserver defaults).
	Slots int
	Tick  time.Duration
	Name  string
	// ClientTimeout forwards to gameserver.Config.ClientTimeout.
	ClientTimeout time.Duration
	// Master, when non-empty, registers the server with that master using
	// Heartbeat (default 1s) — the discovery path bots browse for
	// fail-over.
	Master    string
	Heartbeat time.Duration
	// TraceOut, when non-nil, captures every datagram the server sends or
	// receives into a v4 trace written to it (via the server's BatchTap).
	TraceOut io.Writer
}

// Spawned is a running in-process server: a real UDP socket driven by the
// same gameserver code as cmd/csserver, plus the discovery registration and
// trace capture around it.
type Spawned struct {
	cfg    SpawnConfig
	srv    *gameserver.Server
	reg    *discovery.Registrant
	cap    *Capture
	cancel context.CancelFunc
	done   chan struct{}

	stopOnce sync.Once
	stopErr  error
}

// Spawn starts a server. The caller must end it with Kill (crash) or
// Shutdown (graceful); both seal the capture trace.
func Spawn(cfg SpawnConfig) (*Spawned, error) {
	gcfg := gameserver.DefaultConfig()
	if cfg.Addr != "" {
		gcfg.Addr = cfg.Addr
	}
	if cfg.Slots > 0 {
		gcfg.Slots = cfg.Slots
	}
	if cfg.Tick > 0 {
		gcfg.TickInterval = cfg.Tick
	}
	if cfg.Name != "" {
		gcfg.ServerName = cfg.Name
	}
	if cfg.ClientTimeout > 0 {
		gcfg.ClientTimeout = cfg.ClientTimeout
	}
	sp := &Spawned{cfg: cfg, done: make(chan struct{})}
	if cfg.TraceOut != nil {
		sp.cap = NewCapture(cfg.TraceOut, gcfg.TickInterval)
		gcfg.BatchTap = sp.cap
	}
	srv, err := gameserver.Listen(gcfg)
	if err != nil {
		return nil, err
	}
	sp.srv = srv
	if cfg.Master != "" {
		beat := cfg.Heartbeat
		if beat <= 0 {
			beat = time.Second
		}
		port := uint16(srv.Addr().(*net.UDPAddr).Port)
		reg, err := discovery.Register(cfg.Master, port, beat)
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("loadtest: register %s: %w", cfg.Master, err)
		}
		sp.reg = reg
	}
	ctx, cancel := context.WithCancel(context.Background())
	sp.cancel = cancel
	go func() {
		defer close(sp.done)
		_ = srv.Serve(ctx)
	}()
	return sp, nil
}

// Addr returns the server's bound UDP address.
func (s *Spawned) Addr() string { return s.srv.Addr().String() }

// Stats returns the server's counters.
func (s *Spawned) Stats() gameserver.Stats { return s.srv.Stats() }

// Target returns the harness target for this server, with Kill wired as
// the disturbance hook.
func (s *Spawned) Target() Target {
	return Target{Addr: s.Addr(), Kill: s.Kill}
}

// stop ends the server once. graceful distinguishes a clean shutdown
// (deregister with a bye) from a crash (heartbeats just stop, and the
// master entry lapses by TTL — the paper's outage, where the server is
// invisible to browsing clients until it re-registers).
func (s *Spawned) stop(graceful bool) error {
	s.stopOnce.Do(func() {
		if s.reg != nil {
			if graceful {
				s.reg.Stop()
			} else {
				s.reg.Pause()
			}
		}
		s.cancel()
		<-s.done
		if s.cap != nil {
			// Seal the capture even on a kill: the crash semantics apply
			// to the socket, not to the measurement file.
			s.stopErr = s.cap.Flush()
		}
	})
	return s.stopErr
}

// Kill terminates the server as a crash: the socket closes mid-run and
// heartbeats stop without a deregistration, so discovery-driven clients
// must notice via failed probes. The capture trace is still sealed.
func (s *Spawned) Kill() error { return s.stop(false) }

// Shutdown ends the server gracefully: deregister, close, seal the trace.
func (s *Spawned) Shutdown() error { return s.stop(true) }

// errKillUnsupported reports a kill request against a target with no Kill
// hook (an external process csload cannot reach).
var errKillUnsupported = errors.New("loadtest: kill target has no Kill hook (external server?)")
