// Package loadtest is a ctraffic-style socket load harness for the
// reference game server: it drives N bot connections (gameserver.Bot over
// internal/protocol) at a target user-command rate against one or more real
// csserver processes, prints a continuous monitor line (active/failed
// connections, packets sent/received/dropped, RTT percentiles from info
// probes), injects disturbances — killing a server mid-run to exercise
// master-browse fail-over, applying loss and delay on the client send path
// — and emits a machine-readable JSON summary for offline analysis.
//
// Where the rest of the repository simulates the paper's traffic in
// process, this package pushes the same protocol through the kernel's UDP
// stack: combined with a server-side trace capture (Capture / csserver
// -trace) and cstrace.AnalyzeTrace, one run produces the simulated-vs-
// actual comparison that validates the reproduction against real
// networking end to end.
package loadtest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/gameserver"
)

// discoveryBackoff is the retry schedule for the run-blocking initial
// master browse: ~100ms..1s jittered, seven retries, so a slow-starting
// master is tolerated for a couple of seconds but a dead one fails fast.
func discoveryBackoff() gameserver.Backoff {
	return gameserver.Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Budget: 7}
}

// reconnectBackoff paces a bot slot whose every candidate refused. No
// budget: a load slot never abandons the run, it just stops stampeding.
func reconnectBackoff() gameserver.Backoff {
	return gameserver.Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
}

// Target is one server under load. Kill, when non-nil, terminates the
// server (an in-process Spawned server's crash hook, or a process kill
// wired by the caller); it is required for disturbance injection.
type Target struct {
	Addr string
	Kill func() error
}

// Config parameterizes a load run.
type Config struct {
	// Targets are the servers to drive. With Master set it may be empty:
	// targets are then discovered by browsing the master.
	Targets []Target
	// Master is the master-server address used for discovery. When set,
	// bots (re)connect by browsing — fetch the list, probe every entry,
	// rank by RTT — which is what makes fail-over work: a killed server
	// drops out of the browse result because its info probe times out.
	Master string

	// Bots is the number of concurrent connections to hold open.
	Bots int
	// CmdRate is the user-command rate per bot, packets/second.
	CmdRate float64
	// Duration bounds the run; 0 runs until ctx is done.
	Duration time.Duration

	// ConnRate and ConnBurst pace connection attempts through a token
	// bucket (0 = connect as fast as possible).
	ConnRate  float64
	ConnBurst int

	// Monitor is the sampling interval for the monitor line and the JSON
	// timeline (default 1s).
	Monitor time.Duration
	// Logf, when non-nil, receives one monitor line per interval.
	Logf func(format string, args ...any)

	// Drop is the probability a user command is discarded before the
	// socket write, and Jitter the scale of the delay added to each send —
	// loss and delay injected on the client path, mirroring
	// internal/netem's link model at the harness edge.
	Drop   float64
	Jitter time.Duration

	// KillAfter, when > 0, kills Targets[KillIndex] that long into the
	// run (the target must have a Kill hook).
	KillAfter time.Duration
	KillIndex int

	// SnapshotTimeout is how long a bot tolerates snapshot silence before
	// declaring its server dead and failing over (default 2s).
	SnapshotTimeout time.Duration
	// ProbeInterval is the per-target info-probe period feeding the RTT
	// percentiles (default 250ms; negative disables probing).
	ProbeInterval time.Duration
	// BrowseTimeout bounds master queries and per-server info probes
	// during discovery (default 1s).
	BrowseTimeout time.Duration

	// NamePrefix prefixes bot player names (default "load").
	NamePrefix string
	// Seed drives bot movement and the injection randomness.
	Seed uint64
}

func (cfg *Config) withDefaults() (Config, error) {
	c := *cfg
	if c.Bots <= 0 {
		return c, errors.New("loadtest: Bots must be positive")
	}
	if c.CmdRate <= 0 {
		return c, errors.New("loadtest: CmdRate must be positive")
	}
	if len(c.Targets) == 0 && c.Master == "" {
		return c, errors.New("loadtest: no Targets and no Master")
	}
	if c.Monitor <= 0 {
		c.Monitor = time.Second
	}
	if c.SnapshotTimeout <= 0 {
		c.SnapshotTimeout = 2 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.BrowseTimeout <= 0 {
		c.BrowseTimeout = time.Second
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "load"
	}
	if c.KillAfter > 0 {
		if c.KillIndex < 0 || c.KillIndex >= len(c.Targets) {
			return c, fmt.Errorf("loadtest: KillIndex %d out of range", c.KillIndex)
		}
		if c.Targets[c.KillIndex].Kill == nil {
			return c, errKillUnsupported
		}
	}
	return c, nil
}

// botWorker is one bot slot: it holds at most one live connection at a
// time and accumulates counters across reconnects.
type botWorker struct {
	id int

	mu        sync.Mutex
	cur       *gameserver.Bot
	server    string
	base      gameserver.BotStats
	connects  int64
	failovers int64
}

func (w *botWorker) setCur(b *gameserver.Bot, addr string) {
	w.mu.Lock()
	w.cur, w.server = b, addr
	w.connects++
	w.mu.Unlock()
}

// addRetry charges one backed-off discovery retry to this slot's counters.
func (w *botWorker) addRetry() {
	w.mu.Lock()
	w.base.Retries++
	w.mu.Unlock()
}

func (w *botWorker) retire() {
	w.mu.Lock()
	if w.cur != nil {
		st := w.cur.Stats()
		w.base.CmdsSent += st.CmdsSent
		w.base.CmdsDropped += st.CmdsDropped
		w.base.SnapshotsRecv += st.SnapshotsRecv
		w.base.BytesSent += st.BytesSent
		w.base.BytesRecv += st.BytesRecv
		w.cur = nil
	}
	w.mu.Unlock()
}

// stats returns the accumulated counters including the live connection.
func (w *botWorker) stats() (gameserver.BotStats, string, int64, int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.base
	if w.cur != nil {
		live := w.cur.Stats()
		st.CmdsSent += live.CmdsSent
		st.CmdsDropped += live.CmdsDropped
		st.SnapshotsRecv += live.SnapshotsRecv
		st.BytesSent += live.BytesSent
		st.BytesRecv += live.BytesRecv
	}
	return st, w.server, w.connects, w.failovers
}

type harness struct {
	cfg   Config
	start time.Time

	active    atomic.Int64
	connects  atomic.Int64
	failed    atomic.Int64
	failovers atomic.Int64

	limMu sync.Mutex
	lim   *Limiter

	dead []atomic.Bool // per-target killed flag

	rttMu      sync.Mutex
	rttSamples []float64 // seconds
	rttFailed  int64

	killMu          sync.Mutex
	kill            *KillEvent
	failoversAtKill int64

	bots    []*botWorker
	samples []Sample
}

// Run drives the configured load until ctx is done or Duration elapses and
// returns the run's statistics. It is the library form of cmd/csload.
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if c.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Duration)
		defer cancel()
	}

	h := &harness{
		cfg:   c,
		start: time.Now(),
		lim:   NewLimiter(c.ConnRate, c.ConnBurst),
		dead:  make([]atomic.Bool, len(c.Targets)),
	}

	// Master-only configs discover their target list up front so the RTT
	// probers have addresses to work with; bots re-browse on their own. The
	// retries follow the jittered exponential schedule with a hard budget:
	// a master that never answers fails the run instead of hanging it.
	if len(h.cfg.Targets) == 0 {
		rng := dist.NewRNG(c.Seed ^ 0x9e3779b97f4a7c15)
		_, err := gameserver.Retry(ctx, discoveryBackoff(), rng, func() error {
			lines, berr := gameserver.Browse(h.cfg.Master, h.cfg.BrowseTimeout)
			if berr != nil {
				return berr
			}
			if len(lines) == 0 {
				return errors.New("master returned no servers")
			}
			for _, l := range lines {
				h.cfg.Targets = append(h.cfg.Targets, Target{Addr: l.Addr.String()})
			}
			return nil
		})
		if len(h.cfg.Targets) == 0 {
			return nil, fmt.Errorf("loadtest: no servers discovered via master %s: %w", h.cfg.Master, err)
		}
		h.dead = make([]atomic.Bool, len(h.cfg.Targets))
	}

	// Disturbance: kill one target mid-run.
	if c.KillAfter > 0 {
		target := h.cfg.Targets[c.KillIndex]
		timer := time.AfterFunc(c.KillAfter, func() {
			_ = target.Kill()
			h.dead[c.KillIndex].Store(true)
			h.killMu.Lock()
			h.kill = &KillEvent{Target: target.Addr, At: time.Since(h.start)}
			h.failoversAtKill = h.failovers.Load()
			h.killMu.Unlock()
			if h.cfg.Logf != nil {
				h.cfg.Logf("killed %s at t=%s", target.Addr, time.Since(h.start).Round(time.Millisecond))
			}
		})
		defer timer.Stop()
	}

	// RTT probers, one per target.
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	var probeWG sync.WaitGroup
	if c.ProbeInterval > 0 {
		for i := range h.cfg.Targets {
			probeWG.Add(1)
			go h.probe(probeCtx, &probeWG, i)
		}
	}

	// Bot workers.
	var wg sync.WaitGroup
	h.bots = make([]*botWorker, c.Bots)
	for i := range h.bots {
		h.bots[i] = &botWorker{id: i}
		wg.Add(1)
		go h.runBot(ctx, &wg, h.bots[i])
	}

	// Monitor loop: samples the harness until the run deadline, then takes
	// the closing snapshot while the fleet is still connected.
	ticker := time.NewTicker(c.Monitor)
	defer ticker.Stop()
	var final Sample
loop:
	for {
		select {
		case <-ctx.Done():
			final = h.snapshot()
			break loop
		case <-ticker.C:
			s := h.snapshot()
			h.samples = append(h.samples, s)
			if h.cfg.Logf != nil {
				h.cfg.Logf("%s", s.MonitorLine())
			}
		}
	}

	wg.Wait()
	stopProbes()
	probeWG.Wait()

	return h.assemble(final), nil
}

// snapshot builds a monitor sample and advances the kill-recovery marker.
func (h *harness) snapshot() Sample {
	var s Sample
	s.T = time.Since(h.start)
	s.Active = h.active.Load()
	s.Connects = h.connects.Load()
	s.Failed = h.failed.Load()
	s.Failovers = h.failovers.Load()
	for _, w := range h.bots {
		st, _, _, _ := w.stats()
		s.Sent += st.CmdsSent
		s.Dropped += st.CmdsDropped
		s.Recv += st.SnapshotsRecv
		s.BytesSent += st.BytesSent
		s.BytesRecv += st.BytesRecv
	}
	h.rttMu.Lock()
	p50, p95, p99, _, _ := rttQuantiles(h.rttSamples)
	h.rttMu.Unlock()
	s.RTTP50, s.RTTP95, s.RTTP99 = p50, p95, p99

	// Recovery means the fleet is back at full strength after actually
	// failing over — not merely "still full" in the window before the bots
	// notice the dead server, hence the failover-count guard.
	h.killMu.Lock()
	if h.kill != nil && h.kill.RecoveredAt == 0 && s.T > h.kill.At &&
		s.Active == int64(h.cfg.Bots) && s.Failovers > h.failoversAtKill {
		h.kill.RecoveredAt = s.T
	}
	h.killMu.Unlock()
	return s
}

func (h *harness) assemble(final Sample) *Stats {
	st := &Stats{
		Bots:      h.cfg.Bots,
		CmdRate:   h.cfg.CmdRate,
		Duration:  time.Since(h.start),
		Drop:      h.cfg.Drop,
		Jitter:    h.cfg.Jitter,
		KillAfter: h.cfg.KillAfter,
		Seed:      h.cfg.Seed,
		Final:     final,
		Samples:   h.samples,
	}
	for _, t := range h.cfg.Targets {
		st.Targets = append(st.Targets, t.Addr)
	}
	h.killMu.Lock()
	if h.kill != nil {
		k := *h.kill
		st.Kill = &k
	}
	h.killMu.Unlock()
	h.rttMu.Lock()
	st.RTT.Count = int64(len(h.rttSamples))
	st.RTT.Failed = h.rttFailed
	st.RTT.P50, st.RTT.P95, st.RTT.P99, st.RTT.Min, st.RTT.Max = rttQuantiles(h.rttSamples)
	h.rttMu.Unlock()
	for _, w := range h.bots {
		bs, server, connects, failovers := w.stats()
		st.PerBot = append(st.PerBot, BotSummary{
			ID:        w.id,
			Server:    server,
			Connects:  connects,
			Failovers: failovers,
			Retries:   bs.Retries,
			Sent:      bs.CmdsSent,
			Dropped:   bs.CmdsDropped,
			Recv:      bs.SnapshotsRecv,
			BytesSent: bs.BytesSent,
			BytesRecv: bs.BytesRecv,
		})
	}
	return st
}

// probe measures RTT to one target with periodic info queries. A healthy
// target is probed every ProbeInterval; consecutive failures stretch the
// period on the jittered exponential schedule (capped at 8x) instead of
// piling timeouts onto a struggling server at full rate. It stops probing a
// target once it is marked dead.
func (h *harness) probe(ctx context.Context, wg *sync.WaitGroup, idx int) {
	defer wg.Done()
	addr := h.cfg.Targets[idx].Addr
	bo := gameserver.Backoff{Base: h.cfg.ProbeInterval, Cap: 8 * h.cfg.ProbeInterval, Jitter: 0.25}
	rng := dist.NewRNG(h.cfg.Seed ^ (uint64(idx)*40_503 + 7))
	failStreak := 0
	for {
		if err := sleepCtx(ctx, bo.Delay(failStreak, rng)); err != nil {
			return
		}
		if h.dead[idx].Load() {
			return
		}
		_, rtt, err := gameserver.QueryInfo(addr, h.cfg.BrowseTimeout)
		h.rttMu.Lock()
		if err != nil {
			h.rttFailed++
		} else {
			h.rttSamples = append(h.rttSamples, rtt.Seconds())
		}
		h.rttMu.Unlock()
		if err != nil {
			failStreak++
		} else {
			failStreak = 0
		}
	}
}

// waitConn paces connection attempts through the shared token bucket.
func (h *harness) waitConn(ctx context.Context) error {
	for {
		h.limMu.Lock()
		now := time.Now()
		ok := h.lim.Allow(now)
		var d time.Duration
		if !ok {
			d = h.lim.Delay(now)
		}
		h.limMu.Unlock()
		if ok {
			return nil
		}
		if d < time.Millisecond {
			d = time.Millisecond
		}
		if err := sleepCtx(ctx, d); err != nil {
			return err
		}
	}
}

// candidates returns the connection candidates for a worker, best first.
// With a master it browses (RTT-ranked, dead servers filtered by their
// failed probes — the authentic discovery path); otherwise it round-robins
// the static target list, skipping killed entries.
func (h *harness) candidates(w *botWorker) []string {
	if h.cfg.Master != "" {
		lines, err := gameserver.Browse(h.cfg.Master, h.cfg.BrowseTimeout)
		if err == nil && len(lines) > 0 {
			out := make([]string, 0, len(lines))
			for _, l := range lines {
				out = append(out, l.Addr.String())
			}
			return out
		}
		// Browse failed: fall through to the static list.
	}
	n := len(h.cfg.Targets)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		idx := (w.id + i) % n
		if !h.dead[idx].Load() {
			out = append(out, h.cfg.Targets[idx].Addr)
		}
	}
	return out
}

// runBot is one bot slot's life cycle: connect (paced), play until the run
// ends or the server goes silent, fail over and reconnect.
func (h *harness) runBot(ctx context.Context, wg *sync.WaitGroup, w *botWorker) {
	defer wg.Done()
	bo := reconnectBackoff()
	rng := dist.NewRNG(h.cfg.Seed ^ (uint64(w.id)*2_654_435_761 + 1))
	refused := 0 // consecutive all-candidates-refused rounds
	for ctx.Err() == nil {
		if err := h.waitConn(ctx); err != nil {
			return
		}
		var bot *gameserver.Bot
		var addr string
		for _, cand := range h.candidates(w) {
			if ctx.Err() != nil {
				return
			}
			b, err := gameserver.Dial(gameserver.BotConfig{
				ServerAddr:      cand,
				Name:            fmt.Sprintf("%s%03d", h.cfg.NamePrefix, w.id),
				CmdRate:         h.cfg.CmdRate,
				ConnectTimeout:  h.cfg.BrowseTimeout,
				Seed:            h.cfg.Seed + uint64(w.id)*1_000_003 + uint64(w.connects),
				Drop:            h.cfg.Drop,
				Jitter:          h.cfg.Jitter,
				SnapshotTimeout: h.cfg.SnapshotTimeout,
			})
			if err != nil {
				h.failed.Add(1)
				continue
			}
			bot, addr = b, cand
			break
		}
		if bot == nil {
			// Every candidate refused; back off on the jittered exponential
			// schedule (a dead or full fleet gets geometrically less
			// hammering) and count the retry against this slot.
			w.addRetry()
			d := bo.Delay(refused, rng)
			refused++
			if err := sleepCtx(ctx, d); err != nil {
				return
			}
			continue
		}
		refused = 0
		w.setCur(bot, addr)
		h.connects.Add(1)
		h.active.Add(1)
		err := bot.Run(ctx)
		h.active.Add(-1)
		w.retire()
		if errors.Is(err, gameserver.ErrServerSilent) {
			h.failovers.Add(1)
			w.mu.Lock()
			w.failovers++
			w.mu.Unlock()
			continue
		}
		return
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
