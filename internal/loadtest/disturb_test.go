package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"cstrace/internal/discovery"
	"cstrace/internal/trace"
)

// lockedBuf is a mutex-guarded capture sink: the server's capture writes
// and the test's crash-point snapshot race by design.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestKillFailover is the disturbance-injection drill: two servers behind a
// master, every bot parked on the first, which the harness kills mid-run.
// The bots must notice the silence, re-browse the master (where the dead
// server's failed info probe filters it out), and resettle on the survivor —
// with the failure window recorded in the JSON stats.
func TestKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live run")
	}
	baseline := runtime.NumGoroutine()

	const bots = 5
	master, err := discovery.ListenMaster(discovery.MasterConfig{
		Addr: "127.0.0.1:0", TTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	masterAddr := master.Addr().String()

	// The victim registers immediately, so the opening browse finds only it
	// and the whole fleet deterministically lands there. It captures its
	// traffic, and the kill hook snapshots the capture bytes at the crash
	// point — the exact torn file a SIGKILL would leave — for the salvage
	// leg below.
	capBuf := &lockedBuf{}
	victim, err := Spawn(SpawnConfig{
		Slots: bots, Master: masterAddr, Heartbeat: 200 * time.Millisecond,
		TraceOut: capBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Shutdown()
	victimTarget := victim.Target()
	realKill := victimTarget.Kill
	var torn []byte
	var tornOnce sync.Once
	victimTarget.Kill = func() error {
		tornOnce.Do(func() { torn = capBuf.Snapshot() })
		return realKill()
	}

	// The survivor starts unregistered; the test registers it mid-run,
	// before the kill, so fail-over has somewhere to go.
	survivor, err := Spawn(SpawnConfig{Slots: bots})
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Shutdown()
	survPort := uint16(mustUDPPort(t, survivor.Addr()))
	stopReg := make(chan struct{})
	regDone := make(chan struct{})
	go func() {
		defer close(regDone)
		time.Sleep(time.Second)
		reg, err := discovery.Register(masterAddr, survPort, 200*time.Millisecond)
		if err != nil {
			return
		}
		<-stopReg
		reg.Stop()
	}()

	st, err := Run(context.Background(), Config{
		Targets:  []Target{victimTarget, survivor.Target()},
		Master:   masterAddr,
		Bots:     bots,
		CmdRate:  30,
		Duration: 7 * time.Second,
		// Reconnects are paced so fail-over takes ~500 ms: on loopback a
		// dead port refuses instantly and an unpaced fleet would resettle
		// between two monitor samples, hiding the failure window.
		ConnRate:        10,
		ConnBurst:       1,
		Monitor:         200 * time.Millisecond,
		KillAfter:       2 * time.Second,
		KillIndex:       0,
		SnapshotTimeout: 500 * time.Millisecond,
		BrowseTimeout:   300 * time.Millisecond,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}

	if st.Kill == nil {
		t.Fatal("no KillEvent in the stats")
	}
	if st.Kill.Target != victim.Target().Addr {
		t.Errorf("killed %s, want %s", st.Kill.Target, victim.Target().Addr)
	}
	if st.Kill.At < 2*time.Second || st.Kill.At > 4*time.Second {
		t.Errorf("kill at %v, want ~2s", st.Kill.At)
	}
	if st.Kill.RecoveredAt == 0 {
		t.Fatalf("fleet never recovered after the kill: %s", st.Final.MonitorLine())
	}
	if st.Kill.RecoveredAt <= st.Kill.At {
		t.Errorf("recovery at %v precedes the kill at %v", st.Kill.RecoveredAt, st.Kill.At)
	}
	if st.Final.Failovers < 1 {
		t.Errorf("%d failovers, want >= 1", st.Final.Failovers)
	}
	// Every bot was on the victim, so every bot must have failed over and
	// reconnected: connects = initial fleet + one reconnect per failover.
	if st.Final.Connects < int64(bots)+st.Final.Failovers {
		t.Errorf("%d connects for %d failovers over %d bots",
			st.Final.Connects, st.Final.Failovers, bots)
	}
	surviving := 0
	for _, b := range st.PerBot {
		if b.Server == survivor.Target().Addr {
			surviving++
		}
	}
	if surviving != bots {
		t.Errorf("%d/%d bots ended on the survivor", surviving, bots)
	}
	// The failure window must be visible in the monitor timeline: some
	// sample between kill and recovery shows a diminished fleet.
	dipped := false
	for _, s := range st.Samples {
		if s.T > st.Kill.At && s.Active < bots {
			dipped = true
		}
	}
	if !dipped {
		t.Error("no sample shows the fleet below strength after the kill")
	}

	// The whole story must survive the JSON round trip csload -stats uses.
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var rt Stats
	if err := json.Unmarshal(buf, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.Kill == nil || *rt.Kill != *st.Kill {
		t.Errorf("KillEvent did not survive JSON: %+v", rt.Kill)
	}
	if rt.Final != st.Final {
		t.Errorf("final sample did not survive JSON")
	}

	// Capture-salvage leg: the bytes snapshotted at the kill are a file
	// with no footer and possibly a torn tail — the crash-only capture
	// contract says Recover salvages every sealed-and-synced segment from
	// them as ordinary, analyzable records.
	if len(torn) == 0 {
		t.Fatal("kill hook snapshotted no capture bytes")
	}
	ix, rep, err := trace.Recover(bytes.NewReader(torn), int64(len(torn)))
	if err != nil {
		t.Fatalf("salvaging the crash-point capture (%d bytes): %v", len(torn), err)
	}
	if len(ix.Segments) == 0 || rep.Records == 0 {
		t.Fatalf("nothing salvaged from %d crash-point bytes (%s)", len(torn), rep)
	}
	var salvaged trace.Collect
	n, err := trace.DecodeIndex(bytes.NewReader(torn), ix, &salvaged, 2)
	if err != nil {
		t.Fatalf("decoding the salvage: %v", err)
	}
	if n != rep.Records {
		t.Fatalf("salvage decoded %d records, report says %d", n, rep.Records)
	}
	for i := 1; i < len(salvaged.Records); i++ {
		if salvaged.Records[i].T < salvaged.Records[i-1].T {
			t.Fatalf("salvaged records out of order at %d: %v after %v",
				i, salvaged.Records[i].T, salvaged.Records[i-1].T)
		}
	}
	t.Logf("salvage: %s", rep)

	// No goroutine leak: after everything is torn down, the count returns
	// to (about) the baseline. The retry loop gives lingering readers time
	// to notice their closed sockets.
	close(stopReg)
	<-regDone
	survivor.Shutdown()
	victim.Shutdown()
	master.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after shutdown", baseline, runtime.NumGoroutine())
}

func mustUDPPort(t *testing.T, addr string) int {
	t.Helper()
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return a.Port
}
