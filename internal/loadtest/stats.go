package loadtest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sample is one monitor snapshot of the whole harness: the continuous
// status line a ctraffic-style run prints once a second, and the timeline
// entry the JSON stats keep for offline analysis. All counters are
// cumulative since the start of the run; Active is instantaneous.
type Sample struct {
	// T is the offset from harness start.
	T time.Duration `json:"t"`
	// Active is the number of currently connected bots.
	Active int64 `json:"active"`
	// Connects counts successful connection handshakes (including
	// reconnects after a fail-over).
	Connects int64 `json:"connects"`
	// Failed counts failed connection attempts (dial/handshake errors and
	// server-full rejects).
	Failed int64 `json:"failed"`
	// Failovers counts connections abandoned because the server went
	// silent, triggering a re-browse.
	Failovers int64 `json:"failovers"`
	// Sent and Dropped count user commands: Sent crossed the socket,
	// Dropped were discarded by the client-side loss injection.
	Sent    int64 `json:"sent"`
	Dropped int64 `json:"dropped"`
	// Recv counts snapshots received by the bots.
	Recv int64 `json:"recv"`
	// BytesSent and BytesRecv are application payload totals.
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
	// RTT percentiles over all info-probe round trips so far (zero until
	// the first probe completes).
	RTTP50 time.Duration `json:"rtt_p50"`
	RTTP95 time.Duration `json:"rtt_p95"`
	RTTP99 time.Duration `json:"rtt_p99"`
}

// MonitorLine renders the sample as the harness's status line, e.g.
//
//	t=2s active=8 conn=8 fail=0 over=0 sent=384 drop=3 recv=320 txB=13824 rxB=40960 rtt=181µs/260µs/301µs
//
// The format is lossless: ParseMonitorLine inverts it exactly.
func (s Sample) MonitorLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s active=%d conn=%d fail=%d over=%d sent=%d drop=%d recv=%d txB=%d rxB=%d rtt=%s/%s/%s",
		s.T, s.Active, s.Connects, s.Failed, s.Failovers,
		s.Sent, s.Dropped, s.Recv, s.BytesSent, s.BytesRecv,
		s.RTTP50, s.RTTP95, s.RTTP99)
	return b.String()
}

// ParseMonitorLine parses a line produced by MonitorLine back into a
// Sample. Unknown keys, missing keys and malformed values are errors.
func ParseMonitorLine(line string) (Sample, error) {
	var s Sample
	fields := strings.Fields(line)
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Sample{}, fmt.Errorf("loadtest: monitor field %q is not key=value", f)
		}
		if seen[key] {
			return Sample{}, fmt.Errorf("loadtest: duplicate monitor key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "t":
			s.T, err = time.ParseDuration(val)
		case "active":
			s.Active, err = strconv.ParseInt(val, 10, 64)
		case "conn":
			s.Connects, err = strconv.ParseInt(val, 10, 64)
		case "fail":
			s.Failed, err = strconv.ParseInt(val, 10, 64)
		case "over":
			s.Failovers, err = strconv.ParseInt(val, 10, 64)
		case "sent":
			s.Sent, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			s.Dropped, err = strconv.ParseInt(val, 10, 64)
		case "recv":
			s.Recv, err = strconv.ParseInt(val, 10, 64)
		case "txB":
			s.BytesSent, err = strconv.ParseInt(val, 10, 64)
		case "rxB":
			s.BytesRecv, err = strconv.ParseInt(val, 10, 64)
		case "rtt":
			parts := strings.Split(val, "/")
			if len(parts) != 3 {
				return Sample{}, fmt.Errorf("loadtest: rtt field %q wants p50/p95/p99", val)
			}
			if s.RTTP50, err = time.ParseDuration(parts[0]); err == nil {
				if s.RTTP95, err = time.ParseDuration(parts[1]); err == nil {
					s.RTTP99, err = time.ParseDuration(parts[2])
				}
			}
		default:
			return Sample{}, fmt.Errorf("loadtest: unknown monitor key %q", key)
		}
		if err != nil {
			return Sample{}, fmt.Errorf("loadtest: monitor field %q: %w", f, err)
		}
	}
	for _, want := range monitorKeys {
		if !seen[want] {
			return Sample{}, fmt.Errorf("loadtest: monitor line missing %q", want)
		}
	}
	return s, nil
}

// monitorKeys is the full key set of a monitor line, in print order.
var monitorKeys = []string{
	"t", "active", "conn", "fail", "over", "sent", "drop", "recv", "txB", "rxB", "rtt",
}

// KillEvent records the disturbance injection: which target was killed,
// when, and when the fleet had fully failed over (every bot connected
// again). RecoveredAt is zero if the run ended before full recovery — the
// failure window is [At, RecoveredAt].
type KillEvent struct {
	Target      string        `json:"target"`
	At          time.Duration `json:"at"`
	RecoveredAt time.Duration `json:"recovered_at,omitempty"`
}

// RTTStats summarizes the info-probe round-trip distribution.
type RTTStats struct {
	Count  int64         `json:"count"`
	Failed int64         `json:"failed"` // probes that timed out or errored
	Min    time.Duration `json:"min"`
	P50    time.Duration `json:"p50"`
	P95    time.Duration `json:"p95"`
	P99    time.Duration `json:"p99"`
	Max    time.Duration `json:"max"`
}

// BotSummary is one bot slot's accumulated counters across every
// connection it held during the run.
type BotSummary struct {
	ID        int    `json:"id"`
	Server    string `json:"server"` // last server the bot was connected to
	Connects  int64  `json:"connects"`
	Failovers int64  `json:"failovers"`
	// Retries counts backed-off reconnect rounds where every candidate
	// refused this slot (see gameserver.Backoff).
	Retries   int64 `json:"retries"`
	Sent      int64 `json:"sent"`
	Dropped   int64 `json:"dropped"`
	Recv      int64 `json:"recv"`
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
}

// Stats is the machine-readable summary of one load run, written by
// csload -stats for offline analysis and tools/benchjson-style gating.
type Stats struct {
	// Run configuration echo.
	Bots      int           `json:"bots"`
	CmdRate   float64       `json:"cmd_rate"`
	Targets   []string      `json:"targets"`
	Duration  time.Duration `json:"duration"` // wall time of the run
	Drop      float64       `json:"drop,omitempty"`
	Jitter    time.Duration `json:"jitter,omitempty"`
	KillAfter time.Duration `json:"kill_after,omitempty"`
	Seed      uint64        `json:"seed"`

	// Final is the closing snapshot; Samples is the monitor timeline.
	Final   Sample   `json:"final"`
	Samples []Sample `json:"samples,omitempty"`

	// Kill is non-nil when a disturbance was injected.
	Kill *KillEvent `json:"kill,omitempty"`

	RTT    RTTStats     `json:"rtt"`
	PerBot []BotSummary `json:"per_bot,omitempty"`
}

// rttQuantiles computes the RTT percentiles from raw samples in seconds.
func rttQuantiles(samples []float64) (p50, p95, p99, min, max time.Duration) {
	if len(samples) == 0 {
		return 0, 0, 0, 0, 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	q := func(f float64) time.Duration {
		i := int(f * float64(len(s)-1))
		return time.Duration(s[i] * float64(time.Second))
	}
	return q(0.50), q(0.95), q(0.99),
		time.Duration(s[0] * float64(time.Second)),
		time.Duration(s[len(s)-1] * float64(time.Second))
}
