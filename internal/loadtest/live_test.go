package loadtest

import (
	"bytes"
	"context"
	"math/bits"
	"testing"
	"time"

	"cstrace"
	"cstrace/internal/trace"
)

// TestLiveLoopbackCapture is the end-to-end loop the package exists for: an
// in-process server on a real loopback UDP socket, a short harness burst
// against it, the exchange captured through the v4 trace writer, and the
// capture run through cstrace.AnalyzeTrace — asserting that live traffic
// reproduces the structural invariants the simulation is built around.
func TestLiveLoopbackCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback run")
	}
	const (
		bots = 6
		tick = 50 * time.Millisecond
	)
	var buf bytes.Buffer
	srv, err := Spawn(SpawnConfig{Slots: 8, Tick: tick, TraceOut: &buf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	st, err := Run(context.Background(), Config{
		Targets:       []Target{srv.Target()},
		Bots:          bots,
		CmdRate:       30,
		Duration:      3 * time.Second,
		Monitor:       250 * time.Millisecond,
		ProbeInterval: -1, // keep the capture free of info-probe datagrams
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Final.Connects < bots {
		t.Fatalf("only %d connects for %d bots", st.Final.Connects, bots)
	}
	if st.Final.Sent == 0 || st.Final.Recv == 0 {
		t.Fatalf("no traffic: %s", st.Final.MonitorLine())
	}
	full := false
	for _, s := range st.Samples {
		full = full || s.Active == bots
	}
	if !full {
		t.Fatal("fleet never fully connected")
	}

	// Seal the capture, then analyze it exactly like a simulated trace.
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	a, err := cstrace.AnalyzeTrace(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if a.Version != 4 {
		t.Fatalf("capture is format v%d, want v4", a.Version)
	}
	if a.Records == 0 || a.Suite.Count.PacketsIn == 0 || a.Suite.Count.PacketsOut == 0 {
		t.Fatalf("empty analysis: %d records, %d in, %d out",
			a.Records, a.Suite.Count.PacketsIn, a.Suite.Count.PacketsOut)
	}

	// Per-kind counts: live traffic must show both the game-state stream
	// and the connection handshakes (connects + disconnects).
	var game, handshake int64
	for _, row := range a.Suite.Kinds.Rows() {
		switch row.Kind {
		case trace.KindGame:
			game = row.Packets
		case trace.KindHandshake:
			handshake = row.Packets
		}
	}
	if game == 0 {
		t.Error("no game-state packets in the capture")
	}
	if handshake < int64(bots) {
		t.Errorf("%d handshake packets, want >= %d (one connect per bot)", handshake, bots)
	}

	// Packet sizes within protocol bounds. Inbound is user commands (36 B),
	// connect requests and disconnects — nothing under the 5 B header+id
	// floor, nothing above the small-message ceiling — and the fixed-size
	// command must dominate the inbound mix.
	in, out := a.Suite.Sizes.In, a.Suite.Sizes.Out
	if f := in.FractionBelow(5); f > 0 {
		t.Errorf("%.4f of inbound payloads below the 5 B protocol floor", f)
	}
	if f := in.FractionBelow(65); f != 1 {
		t.Errorf("%.4f of inbound payloads within the 64 B client-message ceiling, want all", f)
	}
	if cmds := in.Count(36); cmds < in.Total()/2 {
		t.Errorf("36 B user commands are %d of %d inbound packets, want majority", cmds, in.Total())
	}
	// Outbound is snapshots (10 + 13/entity, at most 8 players here) plus
	// handshake replies.
	if f := out.FractionBelow(10 + 13*8 + 1); f != 1 {
		t.Errorf("%.4f of outbound payloads within a full-house snapshot, want all", f)
	}

	// Interarrival structure: the server broadcasts every tick, so a solid
	// share of outbound gaps must land in the log2 bucket holding the tick
	// (the rest are ~0 gaps inside a broadcast burst).
	_, counts := a.Suite.Gaps.Histogram(trace.Out)
	idx := bits.Len64(uint64(tick.Microseconds()))
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no outbound interarrival samples")
	}
	mass := float64(counts[idx]) / float64(total)
	if mass < 0.05 {
		t.Errorf("only %.3f of outbound gaps near the %v tick, want >= 0.05", mass, tick)
	}
}
