package loadtest

import (
	"context"
	"time"
)

// Limiter is a token-bucket rate limiter used to pace connection attempts
// (ctraffic's -rate knob applied to the harness's own actions rather than
// the bots' in-protocol command streams, which pace themselves). It takes
// explicit clock readings so edge cases — rate 0, burst 1, a clock stepping
// backwards — are table-testable without sleeping.
//
// A Limiter is not safe for concurrent use; the harness serializes access.
type Limiter struct {
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
	primed bool
}

// NewLimiter creates a limiter minting rate tokens per second with the
// given burst capacity. The bucket starts full. rate <= 0 disables limiting
// entirely (Allow always succeeds); burst < 1 is clamped to 1.
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// advance refills the bucket for the time elapsed since the last call. A
// clock reading earlier than the previous one (skew, suspend/resume, a
// stepped NTP adjustment) mints nothing and resets the reference point, so
// skew can delay tokens but never mint them.
func (l *Limiter) advance(now time.Time) {
	if !l.primed {
		l.primed = true
		l.last = now
		return
	}
	if now.Before(l.last) {
		l.last = now
		return
	}
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
}

// Allow reports whether an event may proceed at time now, consuming one
// token when it does.
func (l *Limiter) Allow(now time.Time) bool {
	if l.rate <= 0 {
		return true
	}
	l.advance(now)
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Delay returns how long after now the next token becomes available (zero
// when Allow would already succeed). It does not consume the token.
func (l *Limiter) Delay(now time.Time) time.Duration {
	if l.rate <= 0 {
		return 0
	}
	l.advance(now)
	if l.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
}

// Wait blocks until a token is available or ctx is done, consuming the
// token on success.
func (l *Limiter) Wait(ctx context.Context) error {
	for {
		now := time.Now()
		if l.Allow(now) {
			return nil
		}
		d := l.Delay(now)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
