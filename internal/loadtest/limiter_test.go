package loadtest

import (
	"context"
	"testing"
	"time"
)

func TestLimiterTable(t *testing.T) {
	t0 := time.Unix(1000, 0)
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	cases := []struct {
		name  string
		rate  float64
		burst int
		steps []struct {
			at    time.Duration
			allow bool
		}
	}{
		{
			name: "rate zero is unlimited", rate: 0, burst: 1,
			steps: []struct {
				at    time.Duration
				allow bool
			}{
				{0, true}, {0, true}, {0, true}, {time.Hour, true},
			},
		},
		{
			name: "negative rate is unlimited", rate: -3, burst: 1,
			steps: []struct {
				at    time.Duration
				allow bool
			}{
				{0, true}, {0, true},
			},
		},
		{
			name: "burst one: full bucket, then strict pacing", rate: 10, burst: 1,
			steps: []struct {
				at    time.Duration
				allow bool
			}{
				{0, true},  // the single initial token
				{0, false}, // bucket empty
				{50 * time.Millisecond, false},
				{100 * time.Millisecond, true}, // one token minted at 10/s
				{110 * time.Millisecond, false},
			},
		},
		{
			name: "burst clamps below one", rate: 10, burst: 0,
			steps: []struct {
				at    time.Duration
				allow bool
			}{
				{0, true}, {0, false},
			},
		},
		{
			name: "burst absorbs idle time up to capacity", rate: 10, burst: 3,
			steps: []struct {
				at    time.Duration
				allow bool
			}{
				{0, true}, {0, true}, {0, true}, {0, false},
				// A long idle period refills to burst, not beyond.
				{10 * time.Second, true}, {10 * time.Second, true},
				{10 * time.Second, true}, {10 * time.Second, false},
			},
		},
		{
			name: "clock skew mints nothing", rate: 10, burst: 1,
			steps: []struct {
				at    time.Duration
				allow bool
			}{
				{time.Second, true},             // spends the initial token
				{500 * time.Millisecond, false}, // clock stepped back: no minting
				{400 * time.Millisecond, false}, // further back: still nothing
				// Forward progress resumes from the most recent (earliest)
				// reference point.
				{500 * time.Millisecond, true},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLimiter(tc.rate, tc.burst)
			for i, s := range tc.steps {
				if got := l.Allow(at(s.at)); got != s.allow {
					t.Fatalf("step %d (t=%v): Allow=%v, want %v", i, s.at, got, s.allow)
				}
			}
		})
	}
}

func TestLimiterDelay(t *testing.T) {
	t0 := time.Unix(1000, 0)
	l := NewLimiter(10, 1)
	if d := l.Delay(t0); d != 0 {
		t.Fatalf("full bucket Delay = %v, want 0", d)
	}
	if !l.Allow(t0) {
		t.Fatal("full bucket refused")
	}
	// Empty bucket at 10/s: next token 100ms out.
	d := l.Delay(t0)
	if d <= 0 || d > 100*time.Millisecond {
		t.Fatalf("empty bucket Delay = %v, want (0, 100ms]", d)
	}
	// Delay must not consume: Allow at the promised time succeeds.
	if !l.Allow(t0.Add(d)) {
		t.Fatal("Allow failed at the time Delay promised")
	}
	// Unlimited limiter never delays.
	if d := NewLimiter(0, 1).Delay(t0); d != 0 {
		t.Fatalf("unlimited Delay = %v, want 0", d)
	}
}

func TestLimiterWaitHonorsContext(t *testing.T) {
	l := NewLimiter(0.001, 1) // one token per ~17 minutes
	if err := l.Wait(context.Background()); err != nil {
		t.Fatalf("first Wait should use the initial token: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := l.Wait(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
}
