package loadtest

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleFixture() Sample {
	return Sample{
		T:         2*time.Second + 123*time.Millisecond,
		Active:    8,
		Connects:  11,
		Failed:    2,
		Failovers: 3,
		Sent:      384,
		Dropped:   7,
		Recv:      320,
		BytesSent: 13824,
		BytesRecv: 40960,
		RTTP50:    181 * time.Microsecond,
		RTTP95:    260 * time.Microsecond,
		RTTP99:    301 * time.Microsecond,
	}
}

func TestMonitorLineRoundTrip(t *testing.T) {
	want := sampleFixture()
	line := want.MonitorLine()
	got, err := ParseMonitorLine(line)
	if err != nil {
		t.Fatalf("ParseMonitorLine(%q): %v", line, err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The zero sample must round-trip too (zero durations print as "0s").
	zero := Sample{}
	got, err = ParseMonitorLine(zero.MonitorLine())
	if err != nil {
		t.Fatalf("zero sample: %v", err)
	}
	if got != zero {
		t.Fatalf("zero sample round trip: %+v", got)
	}
}

func TestParseMonitorLineErrors(t *testing.T) {
	valid := sampleFixture().MonitorLine()
	cases := map[string]string{
		"empty":         "",
		"not key=value": "t=1s active",
		"unknown key":   valid + " bogus=1",
		"duplicate key": valid + " sent=1",
		"bad number":    strings.Replace(valid, "sent=384", "sent=x", 1),
		"bad duration":  strings.Replace(valid, "t=2.123s", "t=never", 1),
		"short rtt":     strings.Replace(valid, "rtt=181µs/260µs/301µs", "rtt=181µs/260µs", 1),
		"missing key":   strings.Replace(valid, " recv=320", "", 1),
	}
	for name, line := range cases {
		if _, err := ParseMonitorLine(line); err == nil {
			t.Errorf("%s: ParseMonitorLine(%q) succeeded, want error", name, line)
		}
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	want := Stats{
		Bots:      8,
		CmdRate:   24,
		Targets:   []string{"127.0.0.1:27015", "127.0.0.1:27016"},
		Duration:  10 * time.Second,
		Drop:      0.05,
		Jitter:    2 * time.Millisecond,
		KillAfter: 5 * time.Second,
		Seed:      42,
		Final:     sampleFixture(),
		Samples:   []Sample{{T: time.Second, Active: 8}, sampleFixture()},
		Kill: &KillEvent{
			Target:      "127.0.0.1:27015",
			At:          5 * time.Second,
			RecoveredAt: 6 * time.Second,
		},
		RTT: RTTStats{Count: 100, Failed: 3, Min: time.Microsecond,
			P50: 2 * time.Microsecond, P95: 3 * time.Microsecond,
			P99: 4 * time.Microsecond, Max: 5 * time.Microsecond},
		PerBot: []BotSummary{{ID: 0, Server: "127.0.0.1:27016", Connects: 2,
			Failovers: 1, Sent: 100, Dropped: 4, Recv: 90,
			BytesSent: 3600, BytesRecv: 9000}},
	}
	buf, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Stats
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Kill == nil || *got.Kill != *want.Kill {
		t.Fatalf("Kill round trip: %+v", got.Kill)
	}
	got.Kill, want.Kill = nil, nil
	if len(got.Samples) != len(want.Samples) || got.Samples[1] != want.Samples[1] {
		t.Fatalf("Samples round trip: %+v", got.Samples)
	}
	if len(got.PerBot) != 1 || got.PerBot[0] != want.PerBot[0] {
		t.Fatalf("PerBot round trip: %+v", got.PerBot)
	}
	if got.Final != want.Final || got.RTT != want.RTT || got.Bots != want.Bots ||
		got.Duration != want.Duration || got.Seed != want.Seed {
		t.Fatalf("scalar round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestRTTQuantiles(t *testing.T) {
	if p50, p95, p99, min, max := rttQuantiles(nil); p50 != 0 || p95 != 0 || p99 != 0 || min != 0 || max != 0 {
		t.Fatal("empty input should yield zeros")
	}
	// One sample: every quantile is that sample.
	p50, p95, p99, min, max := rttQuantiles([]float64{0.001})
	for _, d := range []time.Duration{p50, p95, p99, min, max} {
		if d != time.Millisecond {
			t.Fatalf("single sample quantile = %v, want 1ms", d)
		}
	}
	// 100 samples 1ms..100ms: p50 lands mid-range regardless of input order.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(100-i) / 1000 // reversed order on purpose
	}
	p50, _, p99, min, max = rttQuantiles(samples)
	if min != time.Millisecond || max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", min, max)
	}
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v, want mid-range", p50)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
	// rttQuantiles must not reorder its input.
	if samples[0] != 0.1 {
		t.Fatal("input slice was mutated")
	}
}
