package loadtest

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzMonitorLine throws arbitrary lines at the parser and checks the
// contract both ways: the parser never panics, and any line it accepts
// re-renders and re-parses to the same sample (print∘parse is idempotent).
func FuzzMonitorLine(f *testing.F) {
	f.Add(sampleFixture().MonitorLine())
	f.Add(Sample{}.MonitorLine())
	f.Add("t=1s active=1 conn=1 fail=0 over=0 sent=1 drop=0 recv=1 txB=1 rxB=1 rtt=1µs/2µs/3µs")
	f.Add("")
	f.Add("t=1s t=1s")
	f.Add("rtt=1s/2s")
	f.Add("active=-9223372036854775808")
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseMonitorLine(line)
		if err != nil {
			return
		}
		line2 := s.MonitorLine()
		s2, err := ParseMonitorLine(line2)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", line, line2, err)
		}
		if s2 != s {
			t.Fatalf("parse(%q) = %+v, but parse(print) = %+v", line, s, s2)
		}
	})
}

// FuzzSampleRoundTrip drives the renderer from arbitrary field values:
// whatever the counters are, MonitorLine must parse back losslessly, and the
// JSON encoding must survive a round trip too. Durations are clamped
// non-negative — the harness never reports negative times, and
// time.Duration's "-1µs" rendering is not part of the contract.
func FuzzSampleRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(time.Second), int64(8), int64(384), int64(40960), int64(181000), int64(301000))
	f.Add(int64(1<<62), int64(1)<<62, int64(-5), int64(7), int64(1<<40), int64(3))
	f.Fuzz(func(t *testing.T, tns, active, sent, bytesRecv, rttp50, rttp99 int64) {
		clamp := func(v int64) time.Duration {
			if v < 0 {
				return 0
			}
			return time.Duration(v)
		}
		s := Sample{
			T:         clamp(tns),
			Active:    active,
			Connects:  active + 1,
			Failed:    sent / 2,
			Failovers: active / 3,
			Sent:      sent,
			Dropped:   sent / 10,
			Recv:      bytesRecv / 128,
			BytesSent: sent * 36,
			BytesRecv: bytesRecv,
			RTTP50:    clamp(rttp50),
			RTTP95:    clamp((rttp50 + rttp99) / 2),
			RTTP99:    clamp(rttp99),
		}
		got, err := ParseMonitorLine(s.MonitorLine())
		if err != nil {
			t.Fatalf("own line rejected: %v (%q)", err, s.MonitorLine())
		}
		if got != s {
			t.Fatalf("monitor round trip:\n got %+v\nwant %+v", got, s)
		}

		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var js Sample
		if err := json.Unmarshal(buf, &js); err != nil {
			t.Fatal(err)
		}
		if js != s {
			t.Fatalf("json round trip:\n got %+v\nwant %+v", js, s)
		}
	})
}
