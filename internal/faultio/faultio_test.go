package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestWriterFaults exercises the write-side fault matrix in isolation —
// no trace layer on top — asserting for each case that Bytes() is exactly
// the durable prefix, the right error surfaces on the right call, and the
// fault latches for everything after it.
func TestWriterFaults(t *testing.T) {
	payload := []byte("0123456789abcdef") // 16 bytes per write

	cases := []struct {
		name   string
		w      *Writer
		writes int
		// wantN[i] is write i's byte count; wantErr[i] non-nil means write
		// i must return exactly that error.
		wantN       []int
		wantErr     []error
		wantDurable []byte
	}{
		{
			name:        "transparent pass-through",
			w:           &Writer{},
			writes:      2,
			wantN:       []int{16, 16},
			wantErr:     []error{nil, nil},
			wantDurable: append(append([]byte(nil), payload...), payload...),
		},
		{
			name:   "short write: disk fills mid-write",
			w:      &Writer{FailAt: 10},
			writes: 2,
			// The first write crosses the 10-byte budget: its first 10
			// bytes land, the rest never reach the medium.
			wantN:       []int{10, 0},
			wantErr:     []error{ErrNoSpace, ErrNoSpace},
			wantDurable: payload[:10],
		},
		{
			name:        "ENOSPC after N whole writes",
			w:           &Writer{FailAt: 32},
			writes:      3,
			wantN:       []int{16, 16, 0},
			wantErr:     []error{nil, nil, ErrNoSpace},
			wantDurable: append(append([]byte(nil), payload...), payload...),
		},
		{
			name:        "torn write: power cut mid-datagram",
			w:           &Writer{FailAt: 20, Torn: true},
			writes:      2,
			wantN:       []int{16, 4},
			wantErr:     []error{nil, ErrTorn},
			wantDurable: append(append([]byte(nil), payload...), payload[:4]...),
		},
		{
			name:        "custom error override",
			w:           &Writer{FailAt: 1, Err: io.ErrClosedPipe},
			writes:      1,
			wantN:       []int{1},
			wantErr:     []error{io.ErrClosedPipe},
			wantDurable: payload[:1],
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < tc.writes; i++ {
				n, err := tc.w.Write(payload)
				if n != tc.wantN[i] {
					t.Errorf("write %d: n = %d, want %d", i, n, tc.wantN[i])
				}
				if !errors.Is(err, tc.wantErr[i]) && err != tc.wantErr[i] {
					t.Errorf("write %d: err = %v, want %v", i, err, tc.wantErr[i])
				}
			}
			if got := tc.w.Bytes(); !bytes.Equal(got, tc.wantDurable) {
				t.Errorf("Bytes() = %q (%d bytes), want %q (%d bytes): not exactly the durable prefix",
					got, len(got), tc.wantDurable, len(tc.wantDurable))
			}
			if got := tc.w.BytesWritten(); got != int64(len(tc.wantDurable)) {
				t.Errorf("BytesWritten() = %d, want %d", got, len(tc.wantDurable))
			}
		})
	}
}

// TestWriterSyncFailure checks the accepts-writes-cannot-persist mode:
// Sync fails from the configured call on, latches, and takes Write down
// with it — while the bytes before the failed sync stay visible.
func TestWriterSyncFailure(t *testing.T) {
	w := &Writer{SyncFailAfter: 2}
	if _, err := w.Write([]byte("segment-1")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync 1 should succeed: %v", err)
	}
	if _, err := w.Write([]byte("segment-2")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync 2 = %v, want ErrSyncFailed", err)
	}
	// Latched: no later operation succeeds, no later byte lands.
	if _, err := w.Write([]byte("segment-3")); !errors.Is(err, ErrSyncFailed) {
		t.Errorf("write after failed sync = %v, want ErrSyncFailed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Errorf("sync after failed sync = %v, want ErrSyncFailed", err)
	}
	if got, want := string(w.Bytes()), "segment-1segment-2"; got != want {
		t.Errorf("Bytes() = %q, want %q", got, want)
	}
	if w.Syncs() != 2 {
		t.Errorf("Syncs() = %d, want 2 (latched calls don't count)", w.Syncs())
	}
	if !errors.Is(w.Latched(), ErrSyncFailed) {
		t.Errorf("Latched() = %v, want ErrSyncFailed", w.Latched())
	}
}

// TestWriterLatchesUnderlyingError checks that a real error from the
// wrapped sink latches just like an injected one, with the sink's partial
// write counted in the durable prefix.
func TestWriterLatchesUnderlyingError(t *testing.T) {
	under := &Writer{FailAt: 5} // inner wrapper plays the faulty file
	w := &Writer{W: under}
	n, err := w.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write = %d, %v; want 5, ErrNoSpace", n, err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Errorf("write after underlying failure = %v, want latched ErrNoSpace", err)
	}
	if got := string(w.Bytes()); got != "01234" {
		t.Errorf("Bytes() = %q, want the 5-byte durable prefix", got)
	}
}

// TestWriterAtFaults covers the offset-addressed variant: writes ending
// past FailAt land short, and the fault latches.
func TestWriterAtFaults(t *testing.T) {
	type res struct {
		n   int
		err error
	}
	backing := make(sliceWriterAt, 32)
	w := &WriterAt{W: &backing, FailAt: 12}

	if n, err := w.WriteAt([]byte("aaaaaaaa"), 0); n != 8 || err != nil {
		t.Fatalf("write 1 = %v, %v", res{n, err}, nil)
	}
	// Crosses the boundary: 4 of 8 bytes land.
	if n, err := w.WriteAt([]byte("bbbbbbbb"), 8); n != 4 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("boundary write = %d, %v; want 4, ErrNoSpace", n, err)
	}
	if n, err := w.WriteAt([]byte("c"), 0); n != 0 || !errors.Is(err, ErrNoSpace) {
		t.Errorf("latched write = %d, %v; want 0, ErrNoSpace", n, err)
	}
	if got, want := string(backing[:12]), "aaaaaaaabbbb"; got != want {
		t.Errorf("durable prefix = %q, want %q", got, want)
	}
}

// sliceWriterAt is a fixed-size in-memory io.WriterAt.
type sliceWriterAt []byte

func (s *sliceWriterAt) WriteAt(p []byte, off int64) (int, error) {
	n := copy((*s)[off:], p)
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// TestReaderAtFaults covers the read-side matrix: truncation, bit flips,
// failing sectors, and their interaction with apparent size.
func TestReaderAtFaults(t *testing.T) {
	src := bytes.NewReader([]byte("0123456789abcdef"))

	t.Run("transparent", func(t *testing.T) {
		r := NewReaderAt(src)
		buf := make([]byte, 16)
		if n, err := r.ReadAt(buf, 0); n != 16 || err != nil {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		if string(buf) != "0123456789abcdef" {
			t.Errorf("read %q", buf)
		}
		if r.Size(16) != 16 {
			t.Errorf("Size = %d", r.Size(16))
		}
	})

	t.Run("truncation", func(t *testing.T) {
		r := NewReaderAt(src)
		r.TruncateAt = 10
		buf := make([]byte, 16)
		n, err := r.ReadAt(buf, 0)
		if n != 10 || err != io.EOF {
			t.Fatalf("crossing read = %d, %v; want 10, EOF", n, err)
		}
		if n, err := r.ReadAt(buf, 10); n != 0 || err != io.EOF {
			t.Errorf("past-end read = %d, %v; want 0, EOF", n, err)
		}
		if r.Size(16) != 10 {
			t.Errorf("apparent Size = %d, want 10", r.Size(16))
		}
	})

	t.Run("bit flip", func(t *testing.T) {
		r := NewReaderAt(src)
		r.FlipBit = 3 // '3' ^ 0x01 = '2'
		buf := make([]byte, 16)
		if _, err := r.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "0122456789abcdef" {
			t.Errorf("default-mask flip: read %q", buf)
		}
		// A read not covering the flipped byte is untouched.
		if _, err := r.ReadAt(buf[:4], 4); err != nil {
			t.Fatal(err)
		}
		if string(buf[:4]) != "4567" {
			t.Errorf("clean region read %q", buf[:4])
		}
		r.FlipMask = 0x80
		if _, err := r.ReadAt(buf[:4], 2); err != nil {
			t.Fatal(err)
		}
		if buf[1] != '3'^0x80 {
			t.Errorf("custom-mask flip: byte = %#x, want %#x", buf[1], '3'^0x80)
		}
	})

	t.Run("failing sector", func(t *testing.T) {
		r := NewReaderAt(src)
		r.FailAt = 8
		buf := make([]byte, 16)
		n, err := r.ReadAt(buf, 0)
		if n != 8 || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("crossing read = %d, %v; want 8 bytes then the fault", n, err)
		}
		if string(buf[:8]) != "01234567" {
			t.Errorf("pre-fault bytes = %q", buf[:8])
		}
		if n, err := r.ReadAt(buf, 8); n != 0 || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("at-fault read = %d, %v", n, err)
		}
	})
}

// TestReaderLimit covers the serial-scan byte budget: EOF by default at
// the limit (silent truncation), or the configured error.
func TestReaderLimit(t *testing.T) {
	src := func() *Reader {
		return &Reader{R: bytes.NewReader([]byte("0123456789")), Limit: 4, Err: io.ErrUnexpectedEOF}
	}
	r := src()
	buf := make([]byte, 8)
	n, err := r.Read(buf)
	if n != 4 || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("limited read = %d, %v; want 4, ErrUnexpectedEOF", n, err)
	}
	if string(buf[:4]) != "0123" {
		t.Errorf("read %q", buf[:4])
	}
	if n, err := r.Read(buf); n != 0 || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("read past limit = %d, %v", n, err)
	}

	silent := &Reader{R: bytes.NewReader([]byte("0123456789")), Limit: 4}
	if _, err := io.ReadAll(silent); err != nil {
		t.Errorf("silent truncation should end in clean EOF, got %v", err)
	}
}
