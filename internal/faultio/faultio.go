// Package faultio provides io.Writer / io.WriterAt / io.ReaderAt wrappers
// with programmable faults, for testing how the trace layer degrades when
// the storage underneath it misbehaves: a write that lands short, a disk
// that fills after N bytes, a power cut that tears a write at byte k, an
// fsync that starts failing and never recovers, a read that comes back with
// a flipped bit.
//
// The wrappers model the failure semantics of a real file descriptor, not
// just the error return: once a write-side fault fires, the fault latches
// and every later operation fails with the same error (a file past ENOSPC
// does not heal), while the bytes written before the fault — and only those
// — remain visible through Bytes. That latching is exactly what the
// crash-only capture path must survive: a trace.Writer over a faulty sink
// must never emit a later segment after an earlier one failed, and the
// durable prefix must stay a valid segment stream that trace.Recover can
// salvage.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrNoSpace is the injected disk-full error (the wrapper's ENOSPC).
var ErrNoSpace = errors.New("faultio: no space left on device")

// ErrSyncFailed is the injected fsync failure.
var ErrSyncFailed = errors.New("faultio: sync failed")

// ErrTorn is the injected power-cut error: the write stopped mid-datagram
// and nothing after it reached the medium.
var ErrTorn = errors.New("faultio: torn write")

// Writer wraps an io.Writer with programmable write-side faults. The zero
// value with only W set is a transparent pass-through. Writer is safe for
// concurrent use.
type Writer struct {
	// W is the underlying sink. Nil means "collect only": bytes accumulate
	// in the wrapper and are retrievable with Bytes — the common testing
	// arrangement, since Bytes shows exactly the durable prefix.
	W io.Writer

	// FailAt, when > 0, injects Err (default ErrNoSpace) once total bytes
	// written would exceed it: the write that crosses the boundary lands
	// short — the first FailAt-offset bytes of it are written — and returns
	// the error, like a disk filling mid-write. The fault latches: every
	// later Write and Sync fails with the same error.
	FailAt int64
	// Err overrides the injected error (nil selects ErrNoSpace).
	Err error
	// Torn, when true, makes the failing write report ErrTorn instead and
	// write only the short prefix — a crash mid-write rather than a polite
	// ENOSPC. Implies the same latching.
	Torn bool
	// SyncFailAfter, when > 0, makes Sync fail (latched, ErrSyncFailed)
	// starting with the Nth call: SyncFailAfter = 1 fails the first Sync.
	// Writes keep succeeding — the failure mode of a disk whose cache
	// accepts writes it can no longer persist.
	SyncFailAfter int

	mu      sync.Mutex
	buf     []byte
	n       int64
	syncs   int
	latched error
}

// Write implements io.Writer with the configured faults.
func (w *Writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.latched != nil {
		return 0, w.latched
	}
	n := len(p)
	var ferr error
	if w.FailAt > 0 && w.n+int64(len(p)) > w.FailAt {
		n = int(w.FailAt - w.n)
		if n < 0 {
			n = 0
		}
		ferr = w.faultErr()
		w.latched = ferr
	}
	if n > 0 {
		if w.W != nil {
			m, err := w.W.Write(p[:n])
			if err != nil {
				w.latched = err
				w.n += int64(m)
				w.buf = append(w.buf, p[:m]...)
				return m, err
			}
		}
		w.buf = append(w.buf, p[:n]...)
		w.n += int64(n)
	}
	if ferr != nil {
		return n, ferr
	}
	return n, nil
}

// Sync implements the Sync() error method the trace.Writer probes for,
// with the configured sync fault.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.latched != nil {
		return w.latched
	}
	w.syncs++
	if w.SyncFailAfter > 0 && w.syncs >= w.SyncFailAfter {
		w.latched = ErrSyncFailed
		return w.latched
	}
	if s, ok := w.W.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			w.latched = err
			return err
		}
	}
	return nil
}

// faultErr resolves the configured write fault.
func (w *Writer) faultErr() error {
	if w.Torn {
		return ErrTorn
	}
	if w.Err != nil {
		return w.Err
	}
	return ErrNoSpace
}

// Bytes returns a copy of every byte successfully written so far — the
// durable prefix a crash would leave on disk.
func (w *Writer) Bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf...)
}

// BytesWritten returns the total byte count successfully written.
func (w *Writer) BytesWritten() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Syncs returns how many Sync calls have been observed (including the
// failing one).
func (w *Writer) Syncs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Latched returns the latched fault, or nil while the writer is healthy.
func (w *Writer) Latched() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.latched
}

// WriterAt wraps an io.WriterAt with the same latched byte-budget fault as
// Writer: writes whose end offset exceeds FailAt land short and latch Err.
type WriterAt struct {
	W io.WriterAt
	// FailAt, when > 0, fails any write extending past that offset; the
	// prefix up to FailAt is written. Latched.
	FailAt int64
	// Err overrides the injected error (nil selects ErrNoSpace).
	Err error

	mu      sync.Mutex
	latched error
}

// WriteAt implements io.WriterAt with the configured fault.
func (w *WriterAt) WriteAt(p []byte, off int64) (int, error) {
	w.mu.Lock()
	if w.latched != nil {
		err := w.latched
		w.mu.Unlock()
		return 0, err
	}
	n := len(p)
	var ferr error
	if w.FailAt > 0 && off+int64(len(p)) > w.FailAt {
		n = int(w.FailAt - off)
		if n < 0 {
			n = 0
		}
		if w.Err != nil {
			ferr = w.Err
		} else {
			ferr = ErrNoSpace
		}
		w.latched = ferr
	}
	w.mu.Unlock()
	var m int
	var err error
	if n > 0 {
		m, err = w.W.WriteAt(p[:n], off)
		if err != nil {
			w.mu.Lock()
			if w.latched == nil {
				w.latched = err
			}
			w.mu.Unlock()
			return m, err
		}
	}
	if ferr != nil {
		return m, ferr
	}
	return m, nil
}

// ReaderAt wraps an io.ReaderAt with read-side faults: truncation to a
// shorter size and single-bit corruption. It is how the fault matrix turns
// one reference trace into every torn or corrupted variant without copying
// the file. ReaderAt is stateless per read and safe for concurrent use.
type ReaderAt struct {
	R io.ReaderAt
	// TruncateAt, when >= 0, makes the source appear to end at that byte
	// offset: reads past it return io.EOF, reads crossing it come back
	// short. A negative value disables truncation.
	TruncateAt int64
	// FlipBit, when >= 0, XORs FlipMask (default 0x01) into the byte at
	// that offset on every read that covers it. A negative value disables
	// corruption.
	FlipBit  int64
	FlipMask byte

	// FailAt, when >= 0, makes any read touching that offset fail with Err
	// (default io.ErrUnexpectedEOF) after delivering the bytes before it —
	// a failing sector rather than a short file. Negative disables.
	FailAt int64
	Err    error
}

// NewReaderAt returns a transparent ReaderAt over r with all faults
// disabled; set the fault fields before use.
func NewReaderAt(r io.ReaderAt) *ReaderAt {
	return &ReaderAt{R: r, TruncateAt: -1, FlipBit: -1, FailAt: -1}
}

// ReadAt implements io.ReaderAt with the configured faults.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	limit := int64(len(p))
	var capErr error
	if r.TruncateAt >= 0 {
		if off >= r.TruncateAt {
			return 0, io.EOF
		}
		if off+limit > r.TruncateAt {
			limit = r.TruncateAt - off
			capErr = io.EOF
		}
	}
	if r.FailAt >= 0 && off+limit > r.FailAt {
		if off >= r.FailAt {
			return 0, r.failErr()
		}
		limit = r.FailAt - off
		capErr = r.failErr()
	}
	n, err := r.R.ReadAt(p[:limit], off)
	if r.FlipBit >= 0 && r.FlipBit >= off && r.FlipBit < off+int64(n) {
		mask := r.FlipMask
		if mask == 0 {
			mask = 0x01
		}
		p[r.FlipBit-off] ^= mask
	}
	if err == nil && capErr != nil {
		err = capErr
	}
	if err == nil && int64(n) < int64(len(p)) {
		// A short fault-free read of a capped request still signals the cap.
		err = capErr
	}
	return n, err
}

// Size returns the apparent size of a source of the given real size under
// the truncation fault.
func (r *ReaderAt) Size(real int64) int64 {
	if r.TruncateAt >= 0 && r.TruncateAt < real {
		return r.TruncateAt
	}
	return real
}

// Reader wraps an io.Reader with a byte-budget fault: after Limit bytes the
// stream ends with Err (default io.ErrUnexpectedEOF), mimicking a serial
// scan hitting the torn end of a capture.
type Reader struct {
	R io.Reader
	// Limit, when >= 0, bounds the readable bytes. Negative disables.
	Limit int64
	// Err is returned once the limit is hit (nil selects io.EOF, the
	// silent-truncation case).
	Err error

	n int64
}

// Read implements io.Reader with the configured fault.
func (r *Reader) Read(p []byte) (int, error) {
	if r.Limit >= 0 {
		left := r.Limit - r.n
		if left <= 0 {
			return 0, r.limitErr()
		}
		if int64(len(p)) > left {
			p = p[:left]
		}
	}
	n, err := r.R.Read(p)
	r.n += int64(n)
	if err == nil && r.Limit >= 0 && r.n >= r.Limit {
		err = r.limitErr()
	}
	return n, err
}

func (r *Reader) limitErr() error {
	if r.Err != nil {
		return r.Err
	}
	return io.EOF
}

func (r *ReaderAt) failErr() error {
	if r.Err != nil {
		return r.Err
	}
	return fmt.Errorf("faultio: injected read fault: %w", io.ErrUnexpectedEOF)
}
