package cstrace

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"cstrace/internal/trace"
)

// TestAutoParallelByteIdentical is the self-tuning determinism contract,
// end to end: the full gen → scenario-merge → persist → analyze pipeline
// produces byte-identical scenario reports, byte-identical trace files and
// byte-identical re-analysis reports whether every worker knob is serial,
// hand-tuned, or AutoWorkers — and whatever the machine looks like
// (GOMAXPROCS 1, 4, 8, which also moves the auto worker budget). Run under
// -race in CI, this is the harness that locks down the adaptive shard, the
// worker budget and the tournament merge at once.
func TestAutoParallelByteIdentical(t *testing.T) {
	spec := Scenario{
		Seed:       17,
		Servers:    3,
		Duration:   90 * time.Second,
		Warmup:     time.Minute,
		SlotMix:    []int{22, 32, 16},
		Stagger:    10 * time.Second,
		SpikeMult:  4,
		SpikeDecay: time.Minute,
		RateScale:  5,
	}
	modes := []struct {
		name     string
		par, gen int
	}{
		{"serial", 1, 1},
		{"tuned", 4, 4},
		{"auto", AutoWorkers, AutoWorkers},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var wantReport, wantTrace, wantAnalysis []byte
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for _, m := range modes {
			var traceBuf bytes.Buffer
			w := trace.NewWriter(&traceBuf)
			w.SortWindow = 200 * time.Millisecond
			w.Workers = m.gen

			res, err := RunScenario(ScenarioConfig{
				Spec:        spec,
				Parallelism: m.par,
				GenWorkers:  m.gen,
				Extra:       w,
			})
			if err != nil {
				t.Fatalf("procs=%d %s: %v", procs, m.name, err)
			}
			if err := w.Flush(); err != nil {
				t.Fatalf("procs=%d %s: flush: %v", procs, m.name, err)
			}
			var report bytes.Buffer
			if err := res.WriteReport(&report); err != nil {
				t.Fatal(err)
			}

			a, err := AnalyzeTrace(bytes.NewReader(traceBuf.Bytes()), m.par)
			if err != nil {
				t.Fatalf("procs=%d %s: analyze: %v", procs, m.name, err)
			}
			var analysisOut bytes.Buffer
			if err := a.WriteReport(&analysisOut); err != nil {
				t.Fatal(err)
			}

			if wantReport == nil {
				wantReport = report.Bytes()
				wantTrace = traceBuf.Bytes()
				wantAnalysis = analysisOut.Bytes()
				continue
			}
			if !bytes.Equal(report.Bytes(), wantReport) {
				t.Errorf("procs=%d %s: scenario report differs from serial/1-proc reference", procs, m.name)
			}
			if !bytes.Equal(traceBuf.Bytes(), wantTrace) {
				t.Errorf("procs=%d %s: persisted trace differs from serial/1-proc reference", procs, m.name)
			}
			if !bytes.Equal(analysisOut.Bytes(), wantAnalysis) {
				t.Errorf("procs=%d %s: re-analysis report differs from serial/1-proc reference", procs, m.name)
			}
		}
	}
}
